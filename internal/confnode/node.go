// Package confnode provides the abstract tree representation of
// configuration files used throughout ConfErr.
//
// The original ConfErr models configurations as XML information sets: a
// tree of information items with named properties, some of which point to
// child items. This package is the Go-native equivalent: a Node is an
// ordered tree with a kind, a name, an optional scalar value, a bag of
// string attributes, and an ordered child list. Error-generator plugins
// mutate these trees; format packages parse native files into them and
// serialize them back.
package confnode

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a node in a configuration tree. Different views of the
// same configuration use different kinds: the structural view exposes
// sections and directives, the word view exposes lines and words, the DNS
// record view exposes records and fields.
type Kind int

// Node kinds. Document is always the root of a tree.
const (
	// KindDocument is the root node of a configuration tree; its name is
	// conventionally the logical file name.
	KindDocument Kind = iota + 1
	// KindSection is a named grouping of directives (e.g. "[mysqld]" in an
	// INI file or "<VirtualHost *:80>" in Apache configuration).
	KindSection
	// KindDirective is a single configuration statement, typically a
	// name/value pair.
	KindDirective
	// KindLine is a physical line in the word view.
	KindLine
	// KindWord is a token in the word view; its Value holds the token text.
	KindWord
	// KindRecord is a DNS resource record (or other domain object) in a
	// semantic view.
	KindRecord
	// KindField is a component of a record in a semantic view.
	KindField
	// KindComment preserves comment text so serialization can round-trip.
	KindComment
	// KindBlank preserves blank lines for round-tripping.
	KindBlank
)

var kindNames = map[Kind]string{
	KindDocument:  "document",
	KindSection:   "section",
	KindDirective: "directive",
	KindLine:      "line",
	KindWord:      "word",
	KindRecord:    "record",
	KindField:     "field",
	KindComment:   "comment",
	KindBlank:     "blank",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// kindsByName is the precomputed reverse of kindNames: KindFromString sits
// on cpath's expression-compile path, where a map lookup beats scanning
// kindNames once per parsed step.
var kindsByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, name := range kindNames {
		m[name] = k
	}
	return m
}()

// KindFromString returns the Kind with the given lower-case name, or zero
// and false when no kind has that name.
func KindFromString(s string) (Kind, bool) {
	k, ok := kindsByName[s]
	return k, ok
}

// Node is one item in a configuration tree. The zero value is usable as an
// anonymous node; use New to construct nodes with a kind and name.
//
// Nodes form a tree: each node owns its Children slice and children carry a
// parent pointer maintained by the mutation methods. Do not share a node
// between two trees; use Clone.
type Node struct {
	// Kind classifies the node.
	Kind Kind
	// Name is the node's label: section name, directive key, record type…
	Name string
	// Value is the node's scalar content, when it has one (directive value,
	// word text, field content).
	Value string

	attrs []attrKV
	// attrsShared marks attrs as potentially aliased by other nodes
	// (clones of a frozen tree). Any holder copies the slice before its
	// first mutation, so a shared slice is immutable in practice — what
	// lets the injection hot path clone thousands of nodes per second
	// without copying their attributes. See Freeze.
	attrsShared bool
	children    []*Node
	parent      *Node
}

// attrKV is one attribute entry. Nodes carry at most a handful of
// attributes (provenance, token class), so a linear scan over a small
// slice beats a map: no hashing on the injection hot path's
// per-word AttrDefault lookups, and cloning is a plain copy.
type attrKV struct {
	key, value string
}

// New returns a node with the given kind and name.
func New(kind Kind, name string) *Node {
	return &Node{Kind: kind, Name: name}
}

// NewValued returns a node with the given kind, name and scalar value.
func NewValued(kind Kind, name, value string) *Node {
	return &Node{Kind: kind, Name: name, Value: value}
}

// Parent returns the node's parent, or nil for a root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the node's children. The returned slice is owned by the
// node; callers must not mutate it directly. Use Append, InsertAt, Remove.
func (n *Node) Children() []*Node { return n.children }

// NumChildren returns the number of children.
func (n *Node) NumChildren() int { return len(n.children) }

// Child returns the i-th child, or nil when i is out of range.
func (n *Node) Child(i int) *Node {
	if i < 0 || i >= len(n.children) {
		return nil
	}
	return n.children[i]
}

// Index returns the position of the node among its parent's children, or -1
// for a root node.
func (n *Node) Index() int {
	if n.parent == nil {
		return -1
	}
	for i, c := range n.parent.children {
		if c == n {
			return i
		}
	}
	return -1
}

// SetAttr sets a string attribute on the node.
func (n *Node) SetAttr(key, value string) *Node {
	if n.attrsShared {
		n.unshareAttrs()
	}
	for i := range n.attrs {
		if n.attrs[i].key == key {
			n.attrs[i].value = value
			return n
		}
	}
	n.attrs = append(n.attrs, attrKV{key, value})
	return n
}

// unshareAttrs replaces a shared attribute slice with a private copy — the
// write side of the copy-on-write contract established by Freeze.
func (n *Node) unshareAttrs() {
	kvs := make([]attrKV, len(n.attrs))
	copy(kvs, n.attrs)
	n.attrs = kvs
	n.attrsShared = false
}

// Attr returns the attribute value for key, with ok reporting presence.
func (n *Node) Attr(key string) (string, bool) {
	for i := range n.attrs {
		if n.attrs[i].key == key {
			return n.attrs[i].value, true
		}
	}
	return "", false
}

// AttrDefault returns the attribute value for key, or def when absent.
func (n *Node) AttrDefault(key, def string) string {
	for i := range n.attrs {
		if n.attrs[i].key == key {
			return n.attrs[i].value
		}
	}
	return def
}

// DelAttr removes the attribute for key, if present.
func (n *Node) DelAttr(key string) {
	for i := range n.attrs {
		if n.attrs[i].key == key {
			if n.attrsShared {
				n.unshareAttrs()
			}
			n.attrs = append(n.attrs[:i], n.attrs[i+1:]...)
			return
		}
	}
}

// AttrKeys returns the node's attribute keys in sorted order.
func (n *Node) AttrKeys() []string {
	if len(n.attrs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(n.attrs))
	for i := range n.attrs {
		keys = append(keys, n.attrs[i].key)
	}
	sort.Strings(keys)
	return keys
}

// Append adds children to the end of the node's child list and sets their
// parent pointers. It returns the receiver for chaining.
func (n *Node) Append(children ...*Node) *Node {
	for _, c := range children {
		if c == nil {
			continue
		}
		c.detach()
		c.parent = n
		n.children = append(n.children, c)
	}
	return n
}

// InsertAt inserts child at position i among the node's children. Positions
// are clamped to [0, len(children)].
func (n *Node) InsertAt(i int, child *Node) {
	if child == nil {
		return
	}
	child.detach()
	if i < 0 {
		i = 0
	}
	if i > len(n.children) {
		i = len(n.children)
	}
	child.parent = n
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = child
}

// Remove detaches the node from its parent. It is a no-op for roots.
func (n *Node) Remove() {
	n.detach()
}

func (n *Node) detach() {
	p := n.parent
	if p == nil {
		return
	}
	for i, c := range p.children {
		if c == n {
			p.children = append(p.children[:i], p.children[i+1:]...)
			break
		}
	}
	n.parent = nil
}

// ReplaceWith substitutes the node with repl in its parent's child list.
// It is a no-op when the node is a root or repl is nil.
func (n *Node) ReplaceWith(repl *Node) {
	if repl == nil || n.parent == nil {
		return
	}
	p := n.parent
	i := n.Index()
	if i < 0 {
		return
	}
	repl.detach()
	repl.parent = p
	p.children[i] = repl
	n.parent = nil
}

// Freeze marks every attribute list in the subtree as shared: subsequent
// clones alias the lists instead of copying them, and any holder — the
// original included — transparently copies before its first attribute
// mutation. The engine freezes the campaign's baseline sets once, before
// the workers start, so concurrent per-experiment clones never touch the
// flag again.
func (n *Node) Freeze() {
	if n == nil {
		return
	}
	if n.attrs != nil {
		n.attrsShared = true
	}
	for _, c := range n.children {
		c.Freeze()
	}
}

// Clone returns a deep copy of the subtree rooted at the node. The copy has
// no parent. Attribute lists of frozen nodes are shared copy-on-write
// rather than duplicated (see Freeze).
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Name: n.Name, Value: n.Value}
	if n.attrsShared {
		c.attrs, c.attrsShared = n.attrs, true
	} else if len(n.attrs) > 0 {
		c.attrs = make([]attrKV, len(n.attrs))
		copy(c.attrs, n.attrs)
	}
	if len(n.children) > 0 {
		c.children = make([]*Node, 0, len(n.children))
		for _, ch := range n.children {
			cc := ch.Clone()
			cc.parent = c
			c.children = append(c.children, cc)
		}
	}
	return c
}

// Equal reports whether two subtrees are structurally identical: same kind,
// name, value, attributes and recursively equal children in order. Parent
// pointers are ignored.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Kind != o.Kind || n.Name != o.Name || n.Value != o.Value {
		return false
	}
	if len(n.attrs) != len(o.attrs) {
		return false
	}
	for i := range n.attrs {
		// SetAttr keeps keys unique, so a per-key lookup is a set compare.
		ov, ok := o.Attr(n.attrs[i].key)
		if !ok || ov != n.attrs[i].value {
			return false
		}
	}
	if len(n.children) != len(o.children) {
		return false
	}
	for i, c := range n.children {
		if !c.Equal(o.children[i]) {
			return false
		}
	}
	return true
}

// Walk visits the subtree rooted at the node in depth-first pre-order. The
// visitor returns false to prune the subtree below the visited node. Walk
// snapshots each child list before descending, so visitors may mutate the
// tree (e.g. remove the visited node).
func (n *Node) Walk(visit func(*Node) bool) {
	if n == nil {
		return
	}
	if !visit(n) {
		return
	}
	snapshot := make([]*Node, len(n.children))
	copy(snapshot, n.children)
	for _, c := range snapshot {
		c.Walk(visit)
	}
}

// Find returns all nodes in the subtree (including the root) for which pred
// returns true, in pre-order.
func (n *Node) Find(pred func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if pred(m) {
			out = append(out, m)
		}
		return true
	})
	return out
}

// FindKind returns all nodes of the given kind in pre-order.
func (n *Node) FindKind(kind Kind) []*Node {
	return n.Find(func(m *Node) bool { return m.Kind == kind })
}

// ChildByName returns the first direct child with the given name, or nil.
func (n *Node) ChildByName(name string) *Node {
	for _, c := range n.children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenByKind returns the direct children of the given kind, in order.
func (n *Node) ChildrenByKind(kind Kind) []*Node {
	var out []*Node
	for _, c := range n.children {
		if c.Kind == kind {
			out = append(out, c)
		}
	}
	return out
}

// Root returns the topmost ancestor of the node (possibly itself).
func (n *Node) Root() *Node {
	r := n
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// Path returns a human-readable path from the root to the node, for
// diagnostics and profile records, e.g. "/document/section[1]/directive[3]".
func (n *Node) Path() string {
	if n == nil {
		return ""
	}
	var parts []string
	for cur := n; cur != nil; cur = cur.parent {
		label := cur.Kind.String()
		if cur.Name != "" {
			label += "(" + cur.Name + ")"
		}
		if idx := cur.Index(); idx >= 0 {
			label += fmt.Sprintf("[%d]", idx)
		}
		parts = append(parts, label)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/")
}

// String renders a compact single-line description of the node (not its
// subtree), for diagnostics.
func (n *Node) String() string {
	var b strings.Builder
	b.WriteString(n.Kind.String())
	if n.Name != "" {
		b.WriteString(" name=")
		b.WriteString(n.Name)
	}
	if n.Value != "" {
		b.WriteString(" value=")
		b.WriteString(n.Value)
	}
	for _, k := range n.AttrKeys() {
		v, _ := n.Attr(k)
		fmt.Fprintf(&b, " @%s=%s", k, v)
	}
	return b.String()
}

// Dump renders the subtree as an indented multi-line string, for test
// failure output and debugging.
func (n *Node) Dump() string {
	var b strings.Builder
	n.dump(&b, 0)
	return b.String()
}

func (n *Node) dump(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.String())
	b.WriteByte('\n')
	for _, c := range n.children {
		c.dump(b, depth+1)
	}
}

// CountKind returns the number of nodes of the given kind in the subtree.
func (n *Node) CountKind(kind Kind) int {
	count := 0
	n.Walk(func(m *Node) bool {
		if m.Kind == kind {
			count++
		}
		return true
	})
	return count
}
