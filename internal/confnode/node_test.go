package confnode

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTree() *Node {
	doc := New(KindDocument, "my.cnf")
	mysqld := New(KindSection, "mysqld")
	mysqld.Append(
		NewValued(KindDirective, "port", "3306"),
		NewValued(KindDirective, "key_buffer_size", "16M"),
	)
	dump := New(KindSection, "mysqldump")
	dump.Append(NewValued(KindDirective, "quick", ""))
	doc.Append(mysqld, dump)
	return doc
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindDocument, "document"},
		{KindSection, "section"},
		{KindDirective, "directive"},
		{KindLine, "line"},
		{KindWord, "word"},
		{KindRecord, "record"},
		{KindField, "field"},
		{KindComment, "comment"},
		{KindBlank, "blank"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestKindFromString(t *testing.T) {
	for k, name := range kindNames {
		got, ok := KindFromString(name)
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v; want %v, true", name, got, ok, k)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Error("KindFromString(nope) succeeded, want failure")
	}
}

func TestAppendSetsParent(t *testing.T) {
	doc := sampleTree()
	for _, sec := range doc.Children() {
		if sec.Parent() != doc {
			t.Errorf("child %s parent not set", sec.Name)
		}
		for _, d := range sec.Children() {
			if d.Parent() != sec {
				t.Errorf("directive %s parent not set", d.Name)
			}
		}
	}
}

func TestAppendMovesNodeBetweenParents(t *testing.T) {
	a := New(KindSection, "a")
	b := New(KindSection, "b")
	d := NewValued(KindDirective, "x", "1")
	a.Append(d)
	b.Append(d)
	if a.NumChildren() != 0 {
		t.Errorf("a still has %d children after move", a.NumChildren())
	}
	if b.NumChildren() != 1 || b.Child(0) != d {
		t.Error("b did not receive moved child")
	}
	if d.Parent() != b {
		t.Error("moved child parent not updated")
	}
}

func TestAppendNilIgnored(t *testing.T) {
	a := New(KindSection, "a")
	a.Append(nil, NewValued(KindDirective, "x", "1"), nil)
	if a.NumChildren() != 1 {
		t.Errorf("NumChildren = %d, want 1", a.NumChildren())
	}
}

func TestInsertAt(t *testing.T) {
	sec := New(KindSection, "s")
	sec.Append(NewValued(KindDirective, "a", ""), NewValued(KindDirective, "c", ""))
	sec.InsertAt(1, NewValued(KindDirective, "b", ""))
	names := childNames(sec)
	if !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Errorf("after InsertAt(1): %v", names)
	}
	sec.InsertAt(-5, NewValued(KindDirective, "front", ""))
	sec.InsertAt(100, NewValued(KindDirective, "back", ""))
	names = childNames(sec)
	if !reflect.DeepEqual(names, []string{"front", "a", "b", "c", "back"}) {
		t.Errorf("after clamped inserts: %v", names)
	}
}

func childNames(n *Node) []string {
	var out []string
	for _, c := range n.Children() {
		out = append(out, c.Name)
	}
	return out
}

func TestRemove(t *testing.T) {
	doc := sampleTree()
	sec := doc.Child(0)
	dir := sec.Child(0)
	dir.Remove()
	if sec.NumChildren() != 1 {
		t.Fatalf("NumChildren = %d, want 1", sec.NumChildren())
	}
	if dir.Parent() != nil {
		t.Error("removed node still has a parent")
	}
	// Removing a root is a no-op.
	doc.Remove()
	if doc.NumChildren() != 2 {
		t.Error("root Remove damaged the tree")
	}
}

func TestReplaceWith(t *testing.T) {
	doc := sampleTree()
	sec := doc.Child(0)
	old := sec.Child(1)
	repl := NewValued(KindDirective, "max_connections", "100")
	old.ReplaceWith(repl)
	if sec.Child(1) != repl {
		t.Error("replacement not in place")
	}
	if repl.Parent() != sec {
		t.Error("replacement parent not set")
	}
	if old.Parent() != nil {
		t.Error("old node parent not cleared")
	}
	// Root and nil replacement are no-ops.
	doc.ReplaceWith(New(KindDocument, "x"))
	repl.ReplaceWith(nil)
	if sec.Child(1) != repl {
		t.Error("no-op replacement changed the tree")
	}
}

func TestIndex(t *testing.T) {
	doc := sampleTree()
	if got := doc.Index(); got != -1 {
		t.Errorf("root Index = %d, want -1", got)
	}
	if got := doc.Child(1).Index(); got != 1 {
		t.Errorf("Index = %d, want 1", got)
	}
}

func TestChildOutOfRange(t *testing.T) {
	doc := sampleTree()
	if doc.Child(-1) != nil || doc.Child(10) != nil {
		t.Error("out-of-range Child should return nil")
	}
}

func TestAttrs(t *testing.T) {
	n := New(KindDirective, "port")
	if _, ok := n.Attr("type"); ok {
		t.Error("Attr on empty map should report absent")
	}
	n.SetAttr("type", "int").SetAttr("min", "1")
	if v, ok := n.Attr("type"); !ok || v != "int" {
		t.Errorf("Attr(type) = %q, %v", v, ok)
	}
	if got := n.AttrDefault("max", "none"); got != "none" {
		t.Errorf("AttrDefault = %q", got)
	}
	if got := n.AttrDefault("min", "none"); got != "1" {
		t.Errorf("AttrDefault existing = %q", got)
	}
	if got := n.AttrKeys(); !reflect.DeepEqual(got, []string{"min", "type"}) {
		t.Errorf("AttrKeys = %v", got)
	}
	n.DelAttr("min")
	if _, ok := n.Attr("min"); ok {
		t.Error("DelAttr did not delete")
	}
	if New(KindWord, "w").AttrKeys() != nil {
		t.Error("AttrKeys on attr-less node should be nil")
	}
}

func TestCloneIndependence(t *testing.T) {
	doc := sampleTree()
	doc.Child(0).SetAttr("open", "true")
	cp := doc.Clone()
	if !doc.Equal(cp) {
		t.Fatal("clone not equal to original")
	}
	if cp.Parent() != nil {
		t.Error("clone has a parent")
	}
	cp.Child(0).Child(0).Value = "9999"
	cp.Child(0).SetAttr("open", "false")
	if doc.Child(0).Child(0).Value != "3306" {
		t.Error("mutating clone affected original value")
	}
	if v, _ := doc.Child(0).Attr("open"); v != "true" {
		t.Error("mutating clone affected original attrs")
	}
	if doc.Equal(cp) {
		t.Error("Equal should detect the mutation")
	}
}

func TestCloneNil(t *testing.T) {
	var n *Node
	if n.Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestEqual(t *testing.T) {
	a := sampleTree()
	tests := []struct {
		name   string
		mutate func(*Node)
	}{
		{"kind", func(n *Node) { n.Child(0).Kind = KindDirective }},
		{"name", func(n *Node) { n.Child(0).Name = "other" }},
		{"value", func(n *Node) { n.Child(0).Child(0).Value = "1" }},
		{"attr added", func(n *Node) { n.SetAttr("k", "v") }},
		{"child removed", func(n *Node) { n.Child(1).Remove() }},
		{"child added", func(n *Node) { n.Append(New(KindSection, "extra")) }},
		{"child reordered", func(n *Node) {
			first := n.Child(0)
			first.Remove()
			n.Append(first)
		}},
	}
	for _, tt := range tests {
		b := a.Clone()
		tt.mutate(b)
		if a.Equal(b) {
			t.Errorf("%s: Equal should be false", tt.name)
		}
	}
	if !a.Equal(a.Clone()) {
		t.Error("tree should equal its clone")
	}
	var nilNode *Node
	if nilNode.Equal(a) || a.Equal(nilNode) {
		t.Error("nil vs non-nil should be unequal")
	}
	if !nilNode.Equal(nil) {
		t.Error("nil vs nil should be equal")
	}
	// Same attr count, different keys.
	x := New(KindWord, "w")
	x.SetAttr("a", "1")
	y := New(KindWord, "w")
	y.SetAttr("b", "1")
	if x.Equal(y) {
		t.Error("different attr keys should be unequal")
	}
}

func TestWalkPreOrderAndPrune(t *testing.T) {
	doc := sampleTree()
	var visited []string
	doc.Walk(func(n *Node) bool {
		visited = append(visited, n.Kind.String()+":"+n.Name)
		return n.Name != "mysqld" // prune below [mysqld]
	})
	want := []string{
		"document:my.cnf", "section:mysqld", "section:mysqldump", "directive:quick",
	}
	if !reflect.DeepEqual(visited, want) {
		t.Errorf("Walk order = %v, want %v", visited, want)
	}
}

func TestWalkAllowsMutation(t *testing.T) {
	doc := sampleTree()
	doc.Walk(func(n *Node) bool {
		if n.Kind == KindDirective {
			n.Remove()
		}
		return true
	})
	if got := doc.CountKind(KindDirective); got != 0 {
		t.Errorf("directives remaining = %d, want 0", got)
	}
	if doc.CountKind(KindSection) != 2 {
		t.Error("sections should survive")
	}
}

func TestWalkNil(t *testing.T) {
	var n *Node
	n.Walk(func(*Node) bool { t.Fatal("visitor called on nil node"); return true })
}

func TestFindAndHelpers(t *testing.T) {
	doc := sampleTree()
	dirs := doc.FindKind(KindDirective)
	if len(dirs) != 3 {
		t.Fatalf("FindKind(directive) = %d nodes, want 3", len(dirs))
	}
	ports := doc.Find(func(n *Node) bool { return n.Name == "port" })
	if len(ports) != 1 || ports[0].Value != "3306" {
		t.Errorf("Find(port) = %v", ports)
	}
	if doc.ChildByName("mysqldump") == nil {
		t.Error("ChildByName failed")
	}
	if doc.ChildByName("absent") != nil {
		t.Error("ChildByName should return nil for absent")
	}
	if got := len(doc.ChildrenByKind(KindSection)); got != 2 {
		t.Errorf("ChildrenByKind = %d, want 2", got)
	}
}

func TestRootAndPath(t *testing.T) {
	doc := sampleTree()
	leaf := doc.Child(0).Child(1)
	if leaf.Root() != doc {
		t.Error("Root failed")
	}
	p := leaf.Path()
	if !strings.Contains(p, "document(my.cnf)") ||
		!strings.Contains(p, "section(mysqld)[0]") ||
		!strings.Contains(p, "directive(key_buffer_size)[1]") {
		t.Errorf("Path = %q", p)
	}
	var nilNode *Node
	if nilNode.Path() != "" {
		t.Error("nil Path should be empty")
	}
}

func TestStringAndDump(t *testing.T) {
	n := NewValued(KindDirective, "port", "3306").SetAttr("type", "int")
	s := n.String()
	for _, want := range []string{"directive", "name=port", "value=3306", "@type=int"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	d := sampleTree().Dump()
	if !strings.Contains(d, "  section name=mysqld") {
		t.Errorf("Dump missing indented section:\n%s", d)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	s.Put("a.conf", sampleTree())
	s.Put("b.conf", New(KindDocument, "b.conf"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !reflect.DeepEqual(s.Names(), []string{"a.conf", "b.conf"}) {
		t.Errorf("Names = %v", s.Names())
	}
	if s.Get("a.conf") == nil || s.Get("missing") != nil {
		t.Error("Get behaviour wrong")
	}
	// Replacement keeps order.
	s.Put("a.conf", New(KindDocument, "a2"))
	if !reflect.DeepEqual(s.Names(), []string{"a.conf", "b.conf"}) {
		t.Errorf("Names after replace = %v", s.Names())
	}
	var nilSet *Set
	if nilSet.Get("x") != nil {
		t.Error("nil set Get should be nil")
	}
}

func TestSetCloneEqualWalkDump(t *testing.T) {
	s := NewSet()
	s.Put("a.conf", sampleTree())
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.Get("a.conf").Child(0).Child(0).Value = "1"
	if s.Equal(c) {
		t.Error("Equal should detect tree mutation")
	}
	if s.Get("a.conf").Child(0).Child(0).Value != "3306" {
		t.Error("set Clone shares nodes")
	}
	d := NewSet()
	d.Put("x.conf", sampleTree())
	if s.Equal(d) {
		t.Error("different names should be unequal")
	}
	var visited []string
	s.Walk(func(f string, root *Node) { visited = append(visited, f) })
	if !reflect.DeepEqual(visited, []string{"a.conf"}) {
		t.Errorf("Walk visited %v", visited)
	}
	if !strings.Contains(s.Dump(), "=== a.conf ===") {
		t.Error("Dump missing header")
	}
}

// randomTree builds a random tree for property tests.
func randomTree(r *rand.Rand, depth int) *Node {
	kinds := []Kind{KindSection, KindDirective, KindWord, KindLine, KindRecord}
	n := NewValued(kinds[r.Intn(len(kinds))],
		randString(r), randString(r))
	if r.Intn(2) == 0 {
		n.SetAttr(randString(r), randString(r))
	}
	if depth > 0 {
		for i := 0; i < r.Intn(4); i++ {
			n.Append(randomTree(r, depth-1))
		}
	}
	return n
}

func randString(r *rand.Rand) string {
	const alpha = "abcdefgh_0189"
	b := make([]byte, 1+r.Intn(8))
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return string(b)
}

func TestPropertyCloneEqual(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 3)
		cp := tree.Clone()
		return tree.Equal(cp) && cp.Equal(tree)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyWalkCountsMatchFind(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 3)
		count := 0
		tree.Walk(func(*Node) bool { count++; return true })
		return count == len(tree.Find(func(*Node) bool { return true }))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyParentInvariant(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 3)
		ok := true
		tree.Walk(func(n *Node) bool {
			for _, c := range n.Children() {
				if c.Parent() != n {
					ok = false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
