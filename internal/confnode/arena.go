package confnode

// Arena is a bump allocator for the short-lived node clones of the
// injection hot path. Every experiment clones the file trees a scenario
// touches (through Tracked-set materialization) and throws the clones away
// as soon as the mutated configuration is serialized; allocating those
// clones from the regular heap made Node.Clone ~84% of the engine's
// allocations. An Arena instead hands out nodes, child slices and
// attribute lists from reusable chunks: one Reset per experiment and the
// same memory serves the next clone, so the steady-state hot path
// allocates nothing for cloning at all.
//
// Contract: everything returned by CloneInto (and by Set accessors whose
// set carries the arena, see TrackedInto) is valid only until the next
// Reset. Callers must drop every reference into the arena before
// resetting — the engine does so by construction, because an experiment's
// mutated trees never outlive the experiment. Arenas are not safe for
// concurrent use; the engine keeps one per worker.
type Arena struct {
	nodeChunks [][]Node
	nodeChunk  int // index of the chunk currently bumped
	nodeUsed   int // nodes used in the current chunk

	ptrChunks [][]*Node
	ptrChunk  int
	ptrUsed   int

	kvChunks [][]attrKV
	kvChunk  int
	kvUsed   int
}

// Chunk sizes: large enough that a typical experiment (one or two file
// trees of tens of nodes) fits in the first chunk of each kind.
const (
	arenaNodeChunk = 256
	arenaPtrChunk  = 1024
	arenaKVChunk   = 256
)

// Reset recycles the arena: all previously returned memory may be handed
// out again. See the type comment for the lifetime contract.
func (a *Arena) Reset() {
	a.nodeChunk, a.nodeUsed = 0, 0
	a.ptrChunk, a.ptrUsed = 0, 0
	a.kvChunk, a.kvUsed = 0, 0
}

// node returns a zeroed *Node from the arena. Chunks are fixed-size and
// never reallocated, so pointers into earlier chunks stay valid while
// later ones grow the arena.
func (a *Arena) node() *Node {
	if a.nodeChunk >= len(a.nodeChunks) {
		a.nodeChunks = append(a.nodeChunks, make([]Node, arenaNodeChunk))
	}
	chunk := a.nodeChunks[a.nodeChunk]
	if a.nodeUsed == len(chunk) {
		a.nodeChunk++
		a.nodeUsed = 0
		if a.nodeChunk == len(a.nodeChunks) {
			a.nodeChunks = append(a.nodeChunks, make([]Node, arenaNodeChunk))
		}
		chunk = a.nodeChunks[a.nodeChunk]
	}
	n := &chunk[a.nodeUsed]
	a.nodeUsed++
	*n = Node{}
	return n
}

// ptrs returns a child slice of length n with capacity exactly n: growing
// it (a scenario inserting a node) falls back to a regular heap append,
// which keeps arena memory from being overwritten by a neighbour.
// Oversized requests are served from the heap directly.
func (a *Arena) ptrs(n int) []*Node {
	if n > arenaPtrChunk {
		return make([]*Node, n)
	}
	if a.ptrChunk >= len(a.ptrChunks) {
		a.ptrChunks = append(a.ptrChunks, make([]*Node, arenaPtrChunk))
	}
	chunk := a.ptrChunks[a.ptrChunk]
	if a.ptrUsed+n > len(chunk) {
		a.ptrChunk++
		a.ptrUsed = 0
		if a.ptrChunk == len(a.ptrChunks) {
			a.ptrChunks = append(a.ptrChunks, make([]*Node, arenaPtrChunk))
		}
		chunk = a.ptrChunks[a.ptrChunk]
	}
	s := chunk[a.ptrUsed : a.ptrUsed+n : a.ptrUsed+n]
	a.ptrUsed += n
	for i := range s {
		s[i] = nil
	}
	return s
}

// kvs returns an attribute slice of length n with capacity exactly n,
// bump-allocated like ptrs: growing it (SetAttr on a fresh key) falls
// back to a regular heap append, keeping arena memory from being
// overwritten by a neighbour. Oversized requests come from the heap.
func (a *Arena) kvs(n int) []attrKV {
	if n > arenaKVChunk {
		return make([]attrKV, n)
	}
	if a.kvChunk >= len(a.kvChunks) {
		a.kvChunks = append(a.kvChunks, make([]attrKV, arenaKVChunk))
	}
	chunk := a.kvChunks[a.kvChunk]
	if a.kvUsed+n > len(chunk) {
		a.kvChunk++
		a.kvUsed = 0
		if a.kvChunk == len(a.kvChunks) {
			a.kvChunks = append(a.kvChunks, make([]attrKV, arenaKVChunk))
		}
		chunk = a.kvChunks[a.kvChunk]
	}
	s := chunk[a.kvUsed : a.kvUsed+n : a.kvUsed+n]
	a.kvUsed += n
	return s
}

// CloneInto returns a deep copy of the subtree rooted at n with every
// node, child slice and attribute list drawn from the arena. A nil arena
// degrades to the regular heap Clone. The copy has no parent and obeys
// the arena's Reset lifetime.
func (n *Node) CloneInto(a *Arena) *Node {
	if n == nil {
		return nil
	}
	if a == nil {
		return n.Clone()
	}
	c := a.node()
	c.Kind, c.Name, c.Value = n.Kind, n.Name, n.Value
	if n.attrsShared {
		// Frozen source: alias the list copy-on-write instead of copying
		// every attribute per clone (see Freeze).
		c.attrs, c.attrsShared = n.attrs, true
	} else if len(n.attrs) > 0 {
		kvs := a.kvs(len(n.attrs))
		copy(kvs, n.attrs)
		c.attrs = kvs
	}
	if len(n.children) > 0 {
		cs := a.ptrs(len(n.children))
		for i, ch := range n.children {
			cc := ch.CloneInto(a)
			cc.parent = c
			cs[i] = cc
		}
		c.children = cs
	}
	return c
}
