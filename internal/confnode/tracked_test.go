package confnode

import (
	"fmt"
	"math/rand"
	"testing"
)

// trackedFixture builds a small deterministic multi-file set.
func trackedFixture(files, directives int) *Set {
	s := NewSet()
	for f := 0; f < files; f++ {
		doc := New(KindDocument, fmt.Sprintf("f%02d.conf", f))
		for d := 0; d < directives; d++ {
			n := NewValued(KindDirective, fmt.Sprintf("key%d", d), fmt.Sprintf("value%d", d))
			n.SetAttr("sep", " = ")
			doc.Append(n)
		}
		s.Put(doc.Name, doc)
	}
	return s
}

func TestTrackedBasics(t *testing.T) {
	base := trackedFixture(3, 4)
	snap := base.Clone()
	tr := base.Tracked()
	if !tr.IsTracked() || base.IsTracked() {
		t.Fatal("tracking flags wrong")
	}
	if got := len(tr.DirtyFiles()); got != 0 {
		t.Fatalf("fresh tracked set has %d dirty files", got)
	}

	// Mutating through Get dirties exactly that file and leaves the base
	// untouched.
	doc := tr.Get("f01.conf")
	doc.Child(0).Value = "mutated"
	dirty := tr.Seal()
	if len(dirty) != 1 || dirty[0] != "f01.conf" {
		t.Fatalf("dirty = %v, want [f01.conf]", dirty)
	}
	if !base.Equal(snap) {
		t.Fatal("baseline mutated through tracked wrapper")
	}
	// Clean files share the base tree after sealing (pointer equality is
	// the cleanness test).
	if tr.Get("f00.conf") != base.Get("f00.conf") {
		t.Error("sealed clean file does not share the base tree")
	}
	if tr.Get("f01.conf") == base.Get("f01.conf") {
		t.Error("dirty file still shares the base tree")
	}
	if tr.Get("f01.conf").Child(0).Value != "mutated" {
		t.Error("mutation lost")
	}
}

func TestTrackedPutNewFile(t *testing.T) {
	base := trackedFixture(2, 2)
	tr := base.Tracked()
	tr.Put("new.conf", New(KindDocument, "new.conf"))
	dirty := tr.Seal()
	if len(dirty) != 1 || dirty[0] != "new.conf" {
		t.Fatalf("dirty = %v, want [new.conf]", dirty)
	}
	if tr.Len() != 3 || base.Len() != 2 {
		t.Fatalf("len tracked=%d base=%d", tr.Len(), base.Len())
	}
	if tr.Names()[2] != "new.conf" {
		t.Errorf("Names = %v", tr.Names())
	}
}

func TestTrackedWalkDirtiesEverything(t *testing.T) {
	base := trackedFixture(3, 2)
	tr := base.Tracked()
	tr.Walk(func(_ string, root *Node) { root.Append(New(KindBlank, "")) })
	if got, want := len(tr.Seal()), 3; got != want {
		t.Fatalf("dirty count = %d, want %d", got, want)
	}
}

func TestUntrackedSetReportsAllDirty(t *testing.T) {
	s := trackedFixture(2, 2)
	if got := len(s.DirtyFiles()); got != 2 {
		t.Fatalf("untracked DirtyFiles = %d files, want all (2)", got)
	}
}

func TestTrackedCloneFlattens(t *testing.T) {
	base := trackedFixture(2, 2)
	tr := base.Tracked()
	tr.Get("f00.conf").Child(0).Value = "x"
	c := tr.Clone()
	if c.IsTracked() {
		t.Fatal("clone is still tracked")
	}
	if !c.Equal(tr) {
		t.Fatal("clone differs from source")
	}
	if c.Get("f01.conf") == base.Get("f01.conf") {
		t.Fatal("clone shares a tree with the base")
	}
}

// applyRandomOps drives a pseudo-random mutation program against the set
// through the public API, the way scenario Apply implementations do. The
// ops byte stream makes the same generator usable from the fuzzer.
func applyRandomOps(s *Set, ops []byte) {
	names := s.Names()
	for i := 0; i+2 < len(ops); i += 3 {
		op, fi, ni := ops[i], ops[i+1], ops[i+2]
		if len(names) == 0 {
			return
		}
		name := names[int(fi)%len(names)]
		switch op % 7 {
		case 0: // modify a directive value
			if doc := s.Get(name); doc != nil && doc.NumChildren() > 0 {
				doc.Child(int(ni) % doc.NumChildren()).Value = fmt.Sprintf("mut%d", i)
			}
		case 1: // set an attribute
			if doc := s.Get(name); doc != nil && doc.NumChildren() > 0 {
				doc.Child(int(ni)%doc.NumChildren()).SetAttr("k", fmt.Sprintf("v%d", i))
			}
		case 2: // remove a node
			if doc := s.Get(name); doc != nil && doc.NumChildren() > 0 {
				doc.Child(int(ni) % doc.NumChildren()).Remove()
			}
		case 3: // append a node
			if doc := s.Get(name); doc != nil {
				doc.Append(NewValued(KindDirective, fmt.Sprintf("extra%d", i), "1"))
			}
		case 4: // replace a whole file
			s.Put(name, New(KindDocument, name))
		case 5: // add a new file
			s.Put(fmt.Sprintf("added%d.conf", int(ni)%4), New(KindDocument, "added"))
			names = s.Names()
		case 6: // read without mutating (still conservatively dirty)
			_ = s.Get(name)
		}
	}
}

// checkDirtyNotUnderInclusive is the tracker's core soundness property: a
// file whose tracked tree differs from the baseline MUST be reported
// dirty. (Over-inclusion — reporting an untouched file dirty — costs only
// speed; under-inclusion would make the engine serve stale cached bytes.)
func checkDirtyNotUnderInclusive(t *testing.T, base *Set, ops []byte) {
	t.Helper()
	snap := base.Clone()
	tr := base.Tracked()
	applyRandomOps(tr, ops)
	dirty := map[string]bool{}
	for _, name := range tr.Seal() {
		dirty[name] = true
	}
	if !base.Equal(snap) {
		t.Fatalf("ops %v: baseline mutated through tracked wrapper", ops)
	}
	for _, name := range tr.Names() {
		trTree, baseTree := tr.Get(name), base.Get(name)
		if !trTree.Equal(baseTree) && !dirty[name] {
			t.Fatalf("ops %v: file %s changed but was not reported dirty", ops, name)
		}
	}
}

func TestTrackedDirtyNeverUnderInclusive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		base := trackedFixture(1+rng.Intn(5), 1+rng.Intn(5))
		ops := make([]byte, 3*(1+rng.Intn(10)))
		rng.Read(ops)
		checkDirtyNotUnderInclusive(t, base, ops)
	}
}

func FuzzTrackedDirty(f *testing.F) {
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{2, 1, 0, 4, 0, 0, 0, 1, 1})
	f.Add([]byte{5, 0, 3, 0, 3, 0, 6, 1, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		checkDirtyNotUnderInclusive(t, trackedFixture(3, 3), ops)
	})
}
