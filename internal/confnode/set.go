package confnode

import (
	"fmt"
	"sort"
)

// Set is an ordered collection of configuration trees keyed by logical file
// name. A fault scenario mutates an entire Set, which is what allows
// ConfErr to inject cross-file errors (paper §3.1).
type Set struct {
	order []string
	trees map[string]*Node
}

// NewSet returns an empty configuration set.
func NewSet() *Set {
	return &Set{trees: make(map[string]*Node)}
}

// Put adds or replaces the tree for the given logical file name. Insertion
// order of first occurrence is preserved by Names.
func (s *Set) Put(name string, root *Node) {
	if s.trees == nil {
		s.trees = make(map[string]*Node)
	}
	if _, exists := s.trees[name]; !exists {
		s.order = append(s.order, name)
	}
	s.trees[name] = root
}

// Get returns the tree for the given file name, or nil when absent.
func (s *Set) Get(name string) *Node {
	if s == nil {
		return nil
	}
	return s.trees[name]
}

// Names returns the logical file names in insertion order. The slice is a
// copy.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Len returns the number of files in the set.
func (s *Set) Len() int { return len(s.order) }

// Clone deep-copies the set and every tree in it.
func (s *Set) Clone() *Set {
	c := NewSet()
	for _, name := range s.order {
		c.Put(name, s.trees[name].Clone())
	}
	return c
}

// Equal reports whether two sets contain equal trees under the same names,
// in the same order.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i, name := range s.order {
		if o.order[i] != name {
			return false
		}
		if !s.trees[name].Equal(o.trees[name]) {
			return false
		}
	}
	return true
}

// Walk visits every tree in the set in order.
func (s *Set) Walk(visit func(file string, root *Node)) {
	for _, name := range s.order {
		visit(name, s.trees[name])
	}
}

// Dump renders all trees for debugging, files sorted by name.
func (s *Set) Dump() string {
	names := s.Names()
	sort.Strings(names)
	out := ""
	for _, name := range names {
		out += fmt.Sprintf("=== %s ===\n%s", name, s.trees[name].Dump())
	}
	return out
}
