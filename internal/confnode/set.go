package confnode

import (
	"fmt"
	"sort"
)

// Set is an ordered collection of configuration trees keyed by logical file
// name. A fault scenario mutates an entire Set, which is what allows
// ConfErr to inject cross-file errors (paper §3.1).
//
// A Set can either own its trees outright (the normal case) or be a
// copy-on-write view of a base Set produced by Tracked. Tracked sets power
// the engine's incremental injection pipeline: a scenario applied to a
// tracked set only clones the file trees it actually reaches, and the set
// records exactly those files as dirty.
type Set struct {
	order []string
	trees map[string]*Node

	// base, when non-nil, makes this Set a copy-on-write overlay: reads of
	// files absent from trees fall through to base, and mutating accessors
	// (Get, Walk, Put) first materialize a private clone into trees. A
	// file is dirty exactly when trees holds an entry for it — i.e. when
	// its tree pointer no longer equals the base's (pointer equality is
	// the generation test: untouched files still share the base tree).
	base *Set
	// sealed stops materialization: reads return the overlay tree when
	// present and the shared base tree otherwise. The engine seals a
	// tracked set after the scenario's Apply so the backward transform can
	// read it without inflating the dirty set.
	sealed bool
	// sharedOrder marks order as aliasing the base's slice; Put copies it
	// before the first append. Tracked wrappers start shared so that the
	// common scenario — mutate existing files, add none — never copies the
	// name list.
	sharedOrder bool
	// arena, when non-nil, supplies the memory for materialized clones;
	// trees drawn from it live only until the arena's next Reset. The
	// injection engine threads one arena per worker through the whole
	// mutate/fold/serialize pipeline of an experiment.
	arena *Arena
}

// NewSet returns an empty configuration set.
func NewSet() *Set {
	return &Set{trees: make(map[string]*Node)}
}

// Tracked returns a copy-on-write wrapper of the set. Mutating the wrapper
// (through Get, Walk, Put and the node APIs of the trees they return)
// never touches the receiver: the first access to a file clones that
// file's tree into the wrapper and marks the file dirty. DirtyFiles (or
// Seal) then reports which files a scenario touched, which is what lets
// the engine re-serialize only those. Tracking is conservative: a file
// that was merely read through Get or Walk counts as dirty, because the
// caller could have mutated the returned nodes.
//
// The receiver must not be mutated while wrappers of it are alive.
func (s *Set) Tracked() *Set {
	return s.TrackedWith(nil)
}

// TrackedWith is Tracked with the wrapper's materialized clones drawn from
// the given arena (nil = regular heap). Trees read from the wrapper then
// live only until the arena's next Reset; see Arena.
func (s *Set) TrackedWith(a *Arena) *Set {
	return &Set{order: s.order, sharedOrder: true, base: s, arena: a}
}

// TrackedInto rebuilds dst as a tracked wrapper of the receiver, reusing
// dst's overlay map so a worker can track one experiment after another
// without allocating a wrapper per experiment. dst must not be in use; a
// nil dst allocates a fresh wrapper. Returns dst.
func (s *Set) TrackedInto(dst *Set, a *Arena) *Set {
	if dst == nil {
		dst = &Set{}
	}
	clear(dst.trees)
	dst.order = s.order
	dst.sharedOrder = true
	dst.base = s
	dst.sealed = false
	dst.arena = a
	return dst
}

// Arena returns the arena backing the set's materialized clones, nil for
// heap-backed sets. Views use it to keep an experiment's whole fold on the
// worker's arena.
func (s *Set) Arena() *Arena {
	if s == nil {
		return nil
	}
	return s.arena
}

// IsTracked reports whether the set is a copy-on-write wrapper from
// Tracked.
func (s *Set) IsTracked() bool { return s.base != nil }

// Seal ends the mutation phase of a tracked set and returns its dirty
// files (see DirtyFiles). After Seal, reads return shared base trees for
// clean files instead of materializing clones; callers must treat the
// returned trees as read-only.
func (s *Set) Seal() []string {
	s.sealed = true
	return s.DirtyFiles()
}

// SealAppend is Seal with the dirty files appended to buf — the
// allocation-free form for per-worker scratch slices.
func (s *Set) SealAppend(buf []string) []string {
	s.sealed = true
	return s.AppendDirty(buf)
}

// DirtyFiles returns, in set order, the files whose trees may differ from
// the base set: every file that was materialized by an access or replaced
// by Put. For a set that is not tracked there is no base to compare
// against, so all files are reported dirty — the conservative fallback for
// raw sets and tree surgery performed outside the tracking API.
func (s *Set) DirtyFiles() []string {
	return s.AppendDirty(nil)
}

// AppendDirty appends the dirty files (see DirtyFiles) to buf and returns
// it — the allocation-free form for callers that keep a per-worker
// scratch slice.
func (s *Set) AppendDirty(buf []string) []string {
	for _, name := range s.order {
		if _, ok := s.trees[name]; ok {
			buf = append(buf, name)
		}
	}
	return buf
}

// IsDirty reports whether DirtyFiles would list the file: its tree was
// materialized or replaced on a tracked set, or — conservatively — it is
// simply present on an untracked one.
func (s *Set) IsDirty(name string) bool {
	if _, ok := s.trees[name]; ok {
		return true
	}
	return s.base == nil && s.contains(name)
}

// tree returns the tree for name without materializing: the overlay entry
// when present, the base's otherwise.
func (s *Set) tree(name string) *Node {
	if t, ok := s.trees[name]; ok {
		return t
	}
	if s.base != nil {
		return s.base.tree(name)
	}
	return nil
}

// contains reports whether the set (overlay or base) holds the file.
func (s *Set) contains(name string) bool {
	if _, ok := s.trees[name]; ok {
		return true
	}
	return s.base != nil && s.base.contains(name)
}

// materialize clones the base tree for name into the overlay, marking the
// file dirty, and returns the private clone.
func (s *Set) materialize(name string) *Node {
	if t, ok := s.trees[name]; ok {
		return t
	}
	bt := s.base.tree(name)
	if bt == nil {
		return nil
	}
	c := bt.CloneInto(s.arena)
	if s.trees == nil {
		s.trees = make(map[string]*Node)
	}
	s.trees[name] = c
	return c
}

// Put adds or replaces the tree for the given logical file name. Insertion
// order of first occurrence is preserved by Names. On a tracked set the
// file is marked dirty.
func (s *Set) Put(name string, root *Node) {
	if s.trees == nil {
		s.trees = make(map[string]*Node)
	}
	if !s.contains(name) {
		if s.sharedOrder {
			// The order slice aliases the base's: copy before the first
			// append so tracking never mutates the set it wraps.
			order := make([]string, len(s.order), len(s.order)+1)
			copy(order, s.order)
			s.order = order
			s.sharedOrder = false
		}
		s.order = append(s.order, name)
	}
	s.trees[name] = root
}

// Get returns the tree for the given file name, or nil when absent. On an
// unsealed tracked set the returned tree is a private clone and the file
// is marked dirty (the caller may mutate it freely); on a sealed tracked
// set clean files return the shared base tree, which must not be mutated.
func (s *Set) Get(name string) *Node {
	if s == nil {
		return nil
	}
	if s.base != nil && !s.sealed {
		return s.materialize(name)
	}
	return s.tree(name)
}

// Names returns the logical file names in insertion order. The slice is a
// copy.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Len returns the number of files in the set.
func (s *Set) Len() int { return len(s.order) }

// Clone deep-copies the set and every tree in it. Cloning a tracked set
// flattens it: the copy owns all its trees and tracks nothing.
func (s *Set) Clone() *Set {
	c := NewSet()
	for _, name := range s.order {
		c.Put(name, s.tree(name).Clone())
	}
	return c
}

// Equal reports whether two sets contain equal trees under the same names,
// in the same order.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i, name := range s.order {
		if o.order[i] != name {
			return false
		}
		if !s.tree(name).Equal(o.tree(name)) {
			return false
		}
	}
	return true
}

// Walk visits every tree in the set in order. On an unsealed tracked set
// every visited tree is materialized first — the visitor may mutate — so a
// whole-set Walk dirties every file; scenarios that only need one file
// should use Get.
func (s *Set) Walk(visit func(file string, root *Node)) {
	for _, name := range s.order {
		var root *Node
		if s.base != nil && !s.sealed {
			root = s.materialize(name)
		} else {
			root = s.tree(name)
		}
		visit(name, root)
	}
}

// Freeze marks every tree's attribute maps as shared copy-on-write (see
// Node.Freeze). The engine freezes a campaign's baseline sets once so the
// per-experiment clones alias attribute maps instead of copying them.
func (s *Set) Freeze() {
	for _, name := range s.order {
		s.tree(name).Freeze()
	}
}

// Each visits every (file, tree) pair in set order without materializing:
// on a tracked set, clean files yield the shared base tree, which the
// visitor must treat as read-only. The visitor returns false to stop. It
// is the allocation-free read path the serializer uses (Names copies the
// name list; Walk materializes on unsealed tracked sets).
func (s *Set) Each(visit func(file string, root *Node) bool) {
	for _, name := range s.order {
		if !visit(name, s.tree(name)) {
			return
		}
	}
}

// Dump renders all trees for debugging, files sorted by name.
func (s *Set) Dump() string {
	names := s.Names()
	sort.Strings(names)
	out := ""
	for _, name := range names {
		out += fmt.Sprintf("=== %s ===\n%s", name, s.tree(name).Dump())
	}
	return out
}
