// Package redisd implements a simulated Redis server: a real TCP server
// speaking the inline form of the Redis protocol, whose configuration
// parser models the documented startup behaviour of redis-server over
// redis.conf — a flat "name value…" file that rides ConfErr's existing kv
// codec unchanged, demonstrating the paper's claim that profiling a new
// system needs only a SUT adapter when the format is already covered
// (§3.2).
package redisd

import (
	"bufio"
	"fmt"
	"net"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"conferr/internal/suts"
)

// ConfigFile is the logical name of the simulator's configuration file.
const ConfigFile = "redis.conf"

// Server is the simulated Redis daemon.
type Server struct {
	port int
	tr   suts.Transport

	mu        sync.Mutex
	ln        net.Listener
	curPort   int
	databases int
	wg        sync.WaitGroup

	dataMu sync.Mutex
	data   map[string]string

	// baseMemo caches the checked parse of the campaign-baseline
	// redis.conf across warm reloads (see suts.ParseMemo).
	baseMemo suts.ParseMemo[config]
}

var _ suts.System = (*Server)(nil)
var _ suts.Addressable = (*Server)(nil)
var _ suts.Reloader = (*Server)(nil)
var _ suts.DirtyReloader = (*Server)(nil)
var _ suts.Validator = (*Server)(nil)
var _ suts.HealthChecker = (*Server)(nil)
var _ suts.TransportSetter = (*Server)(nil)

// New returns a simulator whose default configuration listens on the
// given TCP port (0 picks a free one at construction time).
func New(port int) (*Server, error) {
	if port == 0 {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("redisd: allocating port: %w", err)
		}
		port = ln.Addr().(*net.TCPAddr).Port
		if err := ln.Close(); err != nil {
			return nil, fmt.Errorf("redisd: releasing probe listener: %w", err)
		}
	}
	return &Server{port: port}, nil
}

// Name implements suts.System.
func (s *Server) Name() string { return "redis-sim" }

// DefaultPort returns the port of the default configuration.
func (s *Server) DefaultPort() int { return s.port }

// DefaultConfig implements suts.System: a configuration modeled on the
// stock redis.conf — flat space-separated directives, repeated "save"
// lines, size values with units, and enum-valued parameters.
func (s *Server) DefaultConfig() suts.Files {
	conf := fmt.Sprintf(`# Redis configuration (simulated)
bind 127.0.0.1
port %d
timeout 0
tcp-keepalive 300
tcp-backlog 511
daemonize no
loglevel notice
logfile /var/log/redis/redis.log
databases 16

save 900 1
save 300 10
save 60 10000
stop-writes-on-bgsave-error yes
rdbcompression yes
dbfilename dump.rdb
dir /var/lib/redis

maxclients 10000
maxmemory 256mb
maxmemory-policy allkeys-lru

appendonly no
appendfsync everysec
slowlog-log-slower-than 10000
slowlog-max-len 128
`, s.port)
	return suts.Files{ConfigFile: []byte(conf)}
}

// config is the effective configuration.
type config struct {
	port      int
	databases int
}

// check parses a configuration without touching listener state. Errors
// carry redis-server's fatal-config wording.
func (s *Server) check(files suts.Files) (config, error) {
	data, ok := files[ConfigFile]
	if !ok {
		return config{}, &suts.StartupError{System: s.Name(), Msg: "missing " + ConfigFile}
	}
	cfg, err := parseConfig(string(data))
	if err != nil {
		return config{}, &suts.StartupError{System: s.Name(), Msg: err.Error()}
	}
	return cfg, nil
}

// Start implements suts.System.
func (s *Server) Start(files suts.Files) error {
	cfg, err := s.check(files)
	if err != nil {
		return err
	}
	ln, err := s.listen(cfg.port)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.curPort = cfg.port
	s.databases = cfg.databases
	s.mu.Unlock()
	s.resetData()
	s.acceptOn(ln)
	return nil
}

// Reload implements suts.Reloader: it applies a new configuration to the
// running server. A configuration error is rejected with Start's exact
// wording and the previous configuration keeps serving; a port change
// binds the new port before releasing the old one. The dataset resets
// exactly as a cold restart would, keeping profiles mode-independent.
func (s *Server) Reload(files suts.Files) error {
	cfg, err := s.check(files)
	if err != nil {
		return err
	}
	return s.applyReload(cfg)
}

// ReloadDirty implements suts.DirtyReloader: a clean redis.conf carries
// the campaign baseline's bytes, so the memoized baseline parse is
// applied without re-parsing. Observationally identical to Reload.
func (s *Server) ReloadDirty(files suts.Files, dirty []string) error {
	data, ok := files[ConfigFile]
	if ok && !slices.Contains(dirty, ConfigFile) {
		if cfg, hit := s.baseMemo.Get(data); hit {
			return s.applyReload(cfg)
		}
		cfg, err := s.check(files)
		if err != nil {
			return err
		}
		s.baseMemo.Put(data, cfg)
		return s.applyReload(cfg)
	}
	return s.Reload(files)
}

// applyReload drives the running server to a checked configuration.
func (s *Server) applyReload(cfg config) error {
	s.mu.Lock()
	old := s.ln
	samePort := old != nil && s.curPort == cfg.port
	s.mu.Unlock()
	if !samePort {
		ln, err := s.listen(cfg.port)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.ln = ln
		s.curPort = cfg.port
		s.mu.Unlock()
		if old != nil {
			_ = old.Close()
		}
		s.acceptOn(ln)
	}
	s.mu.Lock()
	s.databases = cfg.databases
	s.mu.Unlock()
	s.resetData()
	return nil
}

// Validate implements suts.Validator: parse and check only, the
// `redis-server --test-config` idiom. Socket-level failures are
// invisible to it.
func (s *Server) Validate(files suts.Files) error {
	_, err := s.check(files)
	return err
}

// listen binds the serving socket, wrapping failure in redis's wording.
func (s *Server) listen(port int) (net.Listener, error) {
	ln, err := s.transport().Listen(fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return nil, &suts.StartupError{System: s.Name(),
			Msg: fmt.Sprintf("Could not create server TCP listening socket 127.0.0.1:%d: %v", port, err)}
	}
	return ln, nil
}

// resetData clears the dataset, as every fresh start does.
func (s *Server) resetData() {
	s.dataMu.Lock()
	s.data = make(map[string]string)
	s.dataMu.Unlock()
}

// acceptOn runs the accept loop for one listener generation.
func (s *Server) acceptOn(ln net.Listener) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serve(conn)
			}()
		}
	}()
}

// Stop implements suts.System.
func (s *Server) Stop() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.curPort = 0
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Health implements suts.HealthChecker.
func (s *Server) Health() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return fmt.Errorf("redis-sim: not listening")
	}
	return nil
}

// SetTransport implements suts.TransportSetter. Must be called before
// Start; it moves both the listener and the functional tests' dials.
func (s *Server) SetTransport(t suts.Transport) { s.tr = t }

// transport returns the configured transport, defaulting to TCP.
func (s *Server) transport() suts.Transport {
	if s.tr == nil {
		return suts.TCPTransport{}
	}
	return s.tr
}

// Addr implements suts.Addressable.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// serve handles one client connection speaking inline commands —
// newline-terminated "COMMAND arg arg" lines, the protocol form redis
// supports alongside RESP arrays.
func (s *Server) serve(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 {
			continue
		}
		reply := s.execute(fields)
		if _, err := conn.Write([]byte(reply)); err != nil {
			return
		}
	}
}

// execute runs one command and renders its RESP reply.
func (s *Server) execute(fields []string) string {
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	switch cmd {
	case "PING":
		if len(args) == 1 {
			return bulk(args[0])
		}
		return "+PONG\r\n"
	case "ECHO":
		if len(args) != 1 {
			return errWrongArgs(cmd)
		}
		return bulk(args[0])
	case "SET":
		if len(args) != 2 {
			return errWrongArgs(cmd)
		}
		s.dataMu.Lock()
		s.data[args[0]] = args[1]
		s.dataMu.Unlock()
		return "+OK\r\n"
	case "GET":
		if len(args) != 1 {
			return errWrongArgs(cmd)
		}
		s.dataMu.Lock()
		v, ok := s.data[args[0]]
		s.dataMu.Unlock()
		if !ok {
			return "$-1\r\n"
		}
		return bulk(v)
	case "DEL":
		if len(args) == 0 {
			return errWrongArgs(cmd)
		}
		n := 0
		s.dataMu.Lock()
		for _, k := range args {
			if _, ok := s.data[k]; ok {
				delete(s.data, k)
				n++
			}
		}
		s.dataMu.Unlock()
		return fmt.Sprintf(":%d\r\n", n)
	case "SELECT":
		if len(args) != 1 {
			return errWrongArgs(cmd)
		}
		n, err := strconv.Atoi(args[0])
		s.mu.Lock()
		max := s.databases
		s.mu.Unlock()
		if err != nil || n < 0 || n >= max {
			return "-ERR DB index is out of range\r\n"
		}
		return "+OK\r\n"
	default:
		return fmt.Sprintf("-ERR unknown command '%s'\r\n", fields[0])
	}
}

func bulk(s string) string {
	return fmt.Sprintf("$%d\r\n%s\r\n", len(s), s)
}

func errWrongArgs(cmd string) string {
	return fmt.Sprintf("-ERR wrong number of arguments for '%s' command\r\n", strings.ToLower(cmd))
}

// parseConfig applies redis-server's startup semantics: every line must
// name a known directive with a valid argument list, and a violation
// aborts startup with redis's fatal-config wording.
func parseConfig(conf string) (config, error) {
	cfg := config{port: 6379, databases: 16}
	for lineno, line := range strings.Split(conf, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		fields := strings.Fields(t)
		name, args := strings.ToLower(fields[0]), fields[1:]
		bad := func(msg string) error {
			return fmt.Errorf("*** FATAL CONFIG FILE ERROR *** Reading the configuration file, at line %d >>> '%s' %s",
				lineno+1, t, msg)
		}
		switch name {
		case "bind":
			if len(args) < 1 {
				return cfg, bad("Bad directive or wrong number of arguments")
			}
			for _, a := range args {
				if net.ParseIP(a) == nil && a != "localhost" {
					return cfg, bad("Invalid bind address")
				}
			}
		case "port":
			n, err := atoiArg(args)
			if err != nil || n < 0 || n > 65535 {
				return cfg, bad("Invalid port")
			}
			cfg.port = n
		case "timeout", "tcp-keepalive", "tcp-backlog", "maxclients",
			"slowlog-log-slower-than", "slowlog-max-len":
			if _, err := atoiArg(args); err != nil {
				return cfg, bad("Bad directive or wrong number of arguments")
			}
		case "databases":
			n, err := atoiArg(args)
			if err != nil || n < 1 {
				return cfg, bad("Invalid number of databases")
			}
			cfg.databases = n
		case "save":
			if len(args) != 2 {
				return cfg, bad("Invalid save parameters")
			}
			for _, a := range args {
				if n, err := strconv.Atoi(a); err != nil || n < 0 {
					return cfg, bad("Invalid save parameters")
				}
			}
		case "daemonize", "stop-writes-on-bgsave-error", "rdbcompression", "appendonly":
			if len(args) != 1 || (args[0] != "yes" && args[0] != "no") {
				return cfg, bad("argument must be 'yes' or 'no'")
			}
		case "loglevel":
			if len(args) != 1 || !oneOf(args[0], "debug", "verbose", "notice", "warning") {
				return cfg, bad("Invalid log level. Must be one of debug, verbose, notice, warning")
			}
		case "appendfsync":
			if len(args) != 1 || !oneOf(args[0], "always", "everysec", "no") {
				return cfg, bad("argument must be 'no', 'always' or 'everysec'")
			}
		case "maxmemory-policy":
			if len(args) != 1 || !oneOf(args[0],
				"noeviction", "allkeys-lru", "volatile-lru", "allkeys-random", "volatile-random", "volatile-ttl") {
				return cfg, bad("Invalid maxmemory policy")
			}
		case "maxmemory":
			if len(args) != 1 || !validMemory(args[0]) {
				return cfg, bad("argument must be a memory value")
			}
		case "logfile", "dbfilename", "dir":
			if len(args) != 1 {
				return cfg, bad("Bad directive or wrong number of arguments")
			}
		default:
			return cfg, bad("Bad directive or wrong number of arguments")
		}
	}
	return cfg, nil
}

// atoiArg parses a single mandatory integer argument.
func atoiArg(args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("wrong number of arguments")
	}
	return strconv.Atoi(args[0])
}

func oneOf(s string, options ...string) bool {
	for _, o := range options {
		if s == o {
			return true
		}
	}
	return false
}

// validMemory reports whether s is a redis memory value: a non-negative
// integer with an optional b/kb/mb/gb (or k/m/g) suffix, case-insensitive.
func validMemory(s string) bool {
	l := strings.ToLower(s)
	for _, suf := range []string{"kb", "mb", "gb", "b", "k", "m", "g"} {
		if strings.HasSuffix(l, suf) && len(l) > len(suf) {
			l = l[:len(l)-len(suf)]
			break
		}
	}
	n, err := strconv.Atoi(l)
	return err == nil && n >= 0
}

// dial connects to the running server through its transport.
func (s *Server) dial() (net.Conn, error) {
	return s.transport().Dial(fmt.Sprintf("127.0.0.1:%d", s.DefaultPort()))
}

// roundTrip sends one inline command and reads one reply line (plus the
// payload line of a bulk reply).
func roundTrip(conn net.Conn, r *bufio.Reader, cmd string) (string, error) {
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return "", err
	}
	if _, err := fmt.Fprintf(conn, "%s\r\n", cmd); err != nil {
		return "", err
	}
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if strings.HasPrefix(line, "$") && line != "$-1" {
		payload, err := r.ReadString('\n')
		if err != nil {
			return "", err
		}
		return strings.TrimRight(payload, "\r\n"), nil
	}
	return line, nil
}

// Tests returns the paper-style functional diagnosis an administrator
// would run against a cache: a liveness ping and a write/read round trip.
func Tests(s *Server) []suts.Test {
	return []suts.Test{
		{
			Name: "ping",
			Run: func() error {
				conn, err := s.dial()
				if err != nil {
					return fmt.Errorf("dial: %w", err)
				}
				defer func() { _ = conn.Close() }()
				reply, err := roundTrip(conn, bufio.NewReader(conn), "PING")
				if err != nil {
					return err
				}
				if reply != "+PONG" {
					return fmt.Errorf("PING reply %q", reply)
				}
				return nil
			},
		},
		{
			Name: "set-get",
			Run: func() error {
				conn, err := s.dial()
				if err != nil {
					return fmt.Errorf("dial: %w", err)
				}
				defer func() { _ = conn.Close() }()
				r := bufio.NewReader(conn)
				if reply, err := roundTrip(conn, r, "SET conferr:probe 42"); err != nil || reply != "+OK" {
					return fmt.Errorf("SET reply %q: %v", reply, err)
				}
				if reply, err := roundTrip(conn, r, "GET conferr:probe"); err != nil || reply != "42" {
					return fmt.Errorf("GET reply %q: %v", reply, err)
				}
				if reply, err := roundTrip(conn, r, "DEL conferr:probe"); err != nil || reply != ":1" {
					return fmt.Errorf("DEL reply %q: %v", reply, err)
				}
				return nil
			},
		},
		{
			Name: "select-db",
			Run: func() error {
				conn, err := s.dial()
				if err != nil {
					return fmt.Errorf("dial: %w", err)
				}
				defer func() { _ = conn.Close() }()
				reply, err := roundTrip(conn, bufio.NewReader(conn), "SELECT 15")
				if err != nil {
					return err
				}
				if reply != "+OK" {
					return fmt.Errorf("SELECT 15 reply %q (databases shrunk below the stock 16?)", reply)
				}
				return nil
			},
		},
	}
}
