package redisd

import (
	"bufio"
	"strconv"
	"strings"
	"testing"

	"conferr/internal/suts"
)

func TestDefaultConfigStartsAndPassesTests(t *testing.T) {
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(s.DefaultConfig()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = s.Stop() }()
	for _, test := range Tests(s) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test %s: %v", test.Name, err)
		}
	}
}

func TestRestartable(t *testing.T) {
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	files := s.DefaultConfig()
	for i := 0; i < 2; i++ {
		if err := s.Start(files); err != nil {
			t.Fatalf("Start #%d: %v", i+1, err)
		}
		if err := s.Stop(); err != nil {
			t.Fatalf("Stop #%d: %v", i+1, err)
		}
	}
}

// TestStateDoesNotSurviveRestart guards experiment isolation: keys
// written during one injection must not leak into the next.
func TestStateDoesNotSurviveRestart(t *testing.T) {
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	files := s.DefaultConfig()
	if err := s.Start(files); err != nil {
		t.Fatal(err)
	}
	conn, err := s.dial()
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	if _, err := roundTrip(conn, r, "SET leak 1"); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(files); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Stop() }()
	conn, err = s.dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	reply, err := roundTrip(conn, bufio.NewReader(conn), "GET leak")
	if err != nil {
		t.Fatal(err)
	}
	if reply != "$-1" {
		t.Errorf("GET leak after restart = %q, want $-1", reply)
	}
}

// startErr starts the default configuration with one textual mutation and
// expects a startup rejection containing want.
func startErr(t *testing.T, want string, old, new string) {
	t.Helper()
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	conf := strings.Replace(string(s.DefaultConfig()[ConfigFile]), old, new, 1)
	err = s.Start(suts.Files{ConfigFile: []byte(conf)})
	defer func() { _ = s.Stop() }()
	if err == nil {
		t.Fatalf("Start accepted mutated config (want %q)", want)
	}
	if !suts.IsStartupError(err) {
		t.Fatalf("err = %v, want StartupError", err)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("err = %q, want substring %q", err, want)
	}
}

func TestStartupValidation(t *testing.T) {
	t.Run("unknown directive", func(t *testing.T) {
		startErr(t, "Bad directive or wrong number of arguments", "daemonize no", "daemonise no")
	})
	t.Run("bad boolean", func(t *testing.T) {
		startErr(t, "argument must be 'yes' or 'no'", "appendonly no", "appendonly off")
	})
	t.Run("bad loglevel", func(t *testing.T) {
		startErr(t, "Invalid log level", "loglevel notice", "loglevel chatty")
	})
	t.Run("bad appendfsync", func(t *testing.T) {
		startErr(t, "argument must be 'no', 'always' or 'everysec'", "appendfsync everysec", "appendfsync sometimes")
	})
	t.Run("bad memory value", func(t *testing.T) {
		startErr(t, "argument must be a memory value", "maxmemory 256mb", "maxmemory lots")
	})
	t.Run("bad save line", func(t *testing.T) {
		startErr(t, "Invalid save parameters", "save 900 1", "save 900")
	})
	t.Run("bad port", func(t *testing.T) {
		startErr(t, "Invalid port", "port ", "port 9x")
	})
	t.Run("bad policy", func(t *testing.T) {
		startErr(t, "Invalid maxmemory policy", "maxmemory-policy allkeys-lru", "maxmemory-policy frugal")
	})
	t.Run("bad bind", func(t *testing.T) {
		startErr(t, "Invalid bind address", "bind 127.0.0.1", "bind one-two-seven.example")
	})
	t.Run("bad databases", func(t *testing.T) {
		startErr(t, "Invalid number of databases", "databases 16", "databases 0")
	})
}

// TestSelectDetectsShrunkDatabases: shrinking "databases" is accepted at
// startup (it is a valid setting) but breaks the select-db diagnosis —
// the DetectedByTest outcome class.
func TestSelectDetectsShrunkDatabases(t *testing.T) {
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	conf := strings.Replace(string(s.DefaultConfig()[ConfigFile]), "databases 16", "databases 4", 1)
	if err := s.Start(suts.Files{ConfigFile: []byte(conf)}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = s.Stop() }()
	for _, test := range Tests(s) {
		err := test.Run()
		if test.Name == "select-db" {
			if err == nil {
				t.Error("select-db passed although databases was shrunk to 4")
			}
		} else if err != nil {
			t.Errorf("test %s: %v", test.Name, err)
		}
	}
}

// TestBadPortMutationMovesServer: a mutated port keeps startup green but
// the diagnosis dials the configured primary port and fails — the
// misconfiguration only a functional test catches.
func TestBadPortMutationMovesServer(t *testing.T) {
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(0) // just to grab a second free port number
	if err != nil {
		t.Fatal(err)
	}
	conf := strings.Replace(string(s.DefaultConfig()[ConfigFile]),
		"port "+strconv.Itoa(s.DefaultPort()), "port "+strconv.Itoa(other.DefaultPort()), 1)
	if err := s.Start(suts.Files{ConfigFile: []byte(conf)}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = s.Stop() }()
	if err := Tests(s)[0].Run(); err == nil {
		t.Error("ping reached the default port although the server moved")
	}
}
