package suts

import (
	"net"
	"time"
)

// Transport abstracts the byte transport between a SUT's listeners and
// the clients that reach it (functional tests, benchmarks). The default
// is kernel loopback TCP; internal/memnet provides a net.Pipe-backed
// in-process alternative so experiments can skip the TCP stack entirely.
type Transport interface {
	// Listen binds a listener on addr ("host:port"). A port conflict must
	// yield an error whose text contains "address already in use", the
	// wording the engine's bind-collision retry keys on.
	Listen(addr string) (net.Listener, error)
	// Dial connects to a listener bound on addr. When nothing listens
	// there the error text must contain "connection refused".
	Dial(addr string) (net.Conn, error)
}

// TransportSetter is implemented by SUTs whose listeners and functional
// tests can be moved onto an alternative Transport. It must be called
// before Start; the transport applies to every subsequent lifecycle.
type TransportSetter interface {
	SetTransport(Transport)
}

// TCPTransport is the default Transport: kernel loopback TCP. The zero
// value is ready to use.
type TCPTransport struct {
	// DialTimeout bounds Dial; 0 means 5s, matching the simulators'
	// historical functional-test timeout.
	DialTimeout time.Duration
}

// Listen implements Transport.
func (t TCPTransport) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Dial implements Transport.
func (t TCPTransport) Dial(addr string) (net.Conn, error) {
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	return net.DialTimeout("tcp", addr, timeout)
}
