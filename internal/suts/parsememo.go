package suts

import "sync"

// ParseMemo memoizes the parsed form of one configuration file across
// warm reloads, keyed by the identity — pointer and length — of the raw
// byte slice rather than its content, so a hit costs two comparisons
// instead of a hash of the whole file.
//
// Identity keying is only sound for slices that are both immutable and
// kept alive: the engine's campaign-baseline bytes qualify (the
// incremental pipeline restores them after every experiment and holds
// them for the campaign's lifetime), per-experiment scratch buffers do
// not (same address, different content on the next experiment). The
// memo therefore retains a reference to the keyed slice itself: while
// the entry lives, the allocator cannot recycle its address, so a
// matching (pointer, length) pair is necessarily the same slice with
// the same content. Callers must only Put slices they received as
// clean/baseline content (see DirtyReloader).
//
// One entry suffices — a SUT instance serves one campaign at a time,
// and a campaign has one baseline per file — and keeps the memo from
// pinning dead campaigns' bytes beyond the first reload of the next.
type ParseMemo[T any] struct {
	mu   sync.Mutex
	data []byte
	val  T
	ok   bool
}

// Get returns the memoized parse when data is the exact slice last Put.
func (m *ParseMemo[T]) Get(data []byte) (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ok && len(data) == len(m.data) && (len(data) == 0 || &data[0] == &m.data[0]) {
		return m.val, true
	}
	var zero T
	return zero, false
}

// Put stores the parse of data, replacing any previous entry.
func (m *ParseMemo[T]) Put(data []byte, val T) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data, m.val, m.ok = data, val, true
}
