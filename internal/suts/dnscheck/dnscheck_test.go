package dnscheck

import (
	"strings"
	"testing"

	"conferr/internal/dnswire"
)

// fakeDNS serves a fixed record set for tests.
func fakeDNS(t *testing.T, soaZones map[string]bool, records map[string]string) string {
	t.Helper()
	srv := dnswire.NewServer(func(q dnswire.Question) ([]dnswire.RR, []dnswire.RR, dnswire.RCode) {
		if q.Type == dnswire.TypeSOA && soaZones[q.Name] {
			return []dnswire.RR{{
				Name: q.Name, Type: dnswire.TypeSOA, TTL: 60,
				Data: "ns1.example.com hostmaster.example.com 1 2 3 4 5",
			}}, nil, dnswire.RCodeNoError
		}
		if q.Type == dnswire.TypeA {
			if ip, ok := records[q.Name]; ok {
				return []dnswire.RR{{Name: q.Name, Type: dnswire.TypeA, TTL: 60, Data: ip}}, nil, dnswire.RCodeNoError
			}
		}
		return nil, nil, dnswire.RCodeNXDomain
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv.Addr()
}

func TestZoneLivenessTests(t *testing.T) {
	addr := fakeDNS(t, map[string]bool{"example.com": true}, nil)
	tests := ZoneLivenessTests(addr, []string{"example.com", "missing.org"})
	if len(tests) != 2 {
		t.Fatalf("tests = %d", len(tests))
	}
	if err := tests[0].Run(); err != nil {
		t.Errorf("live zone failed: %v", err)
	}
	if err := tests[1].Run(); err == nil {
		t.Error("dead zone passed")
	} else if !strings.Contains(err.Error(), "missing.org") {
		t.Errorf("err = %v", err)
	}
}

func TestZoneLivenessUnreachableServer(t *testing.T) {
	tests := ZoneLivenessTests("127.0.0.1:1", []string{"example.com"})
	if err := tests[0].Run(); err == nil {
		t.Error("unreachable server passed")
	}
}

func TestRecordTests(t *testing.T) {
	addr := fakeDNS(t, nil, map[string]string{"www.example.com": "192.0.2.10"})
	tests := RecordTests(addr, map[string]string{
		"www.example.com": "192.0.2.10",
		"nx.example.com":  "192.0.2.99",
	})
	if len(tests) != 2 {
		t.Fatalf("tests = %d", len(tests))
	}
	byName := map[string]func() error{}
	for _, tc := range tests {
		byName[tc.Name] = tc.Run
	}
	if err := byName["record/www.example.com"](); err != nil {
		t.Errorf("existing record failed: %v", err)
	}
	if err := byName["record/nx.example.com"](); err == nil {
		t.Error("missing record passed")
	}
}
