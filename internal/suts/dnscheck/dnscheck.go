// Package dnscheck provides the functional test the paper uses for name
// servers: "the script checks that the server is answering to requests
// both for the forward and the reverse zone" (§5.1). The check asks for
// each zone's SOA and requires an authoritative positive answer — it
// verifies zone liveness, not individual records, which is why record-
// level semantic faults (a missing PTR, say) pass the functional tests and
// are classified "not found" in Table 3.
package dnscheck

import (
	"fmt"
	"time"

	"conferr/internal/dnswire"
	"conferr/internal/suts"
)

// queryTimeout bounds each functional-test query.
const queryTimeout = 2 * time.Second

// ZoneLivenessTests returns one functional test per zone, each verifying
// that the server at addr answers the zone's SOA query authoritatively.
func ZoneLivenessTests(addr string, zones []string) []suts.Test {
	tests := make([]suts.Test, 0, len(zones))
	for _, zone := range zones {
		zone := zone
		tests = append(tests, suts.Test{
			Name: "zone-liveness/" + zone,
			Run: func() error {
				resp, err := dnswire.Query(addr, zone, dnswire.TypeSOA, queryTimeout)
				if err != nil {
					return fmt.Errorf("query SOA %s: %w", zone, err)
				}
				if resp.RCode != dnswire.RCodeNoError {
					return fmt.Errorf("SOA %s: rcode %d", zone, resp.RCode)
				}
				for _, rr := range resp.Answers {
					if rr.Type == dnswire.TypeSOA {
						return nil
					}
				}
				return fmt.Errorf("SOA %s: no SOA in answer", zone)
			},
		})
	}
	return tests
}

// RecordTests returns functional tests that check specific records — a
// stricter diagnosis suite than the paper's, useful for custom campaigns.
func RecordTests(addr string, expect map[string]string) []suts.Test {
	var tests []suts.Test
	for name, ip := range expect {
		name, ip := name, ip
		tests = append(tests, suts.Test{
			Name: "record/" + name,
			Run: func() error {
				resp, err := dnswire.Query(addr, name, dnswire.TypeA, queryTimeout)
				if err != nil {
					return fmt.Errorf("query A %s: %w", name, err)
				}
				for _, rr := range resp.Answers {
					if rr.Type == dnswire.TypeA && rr.Data == ip {
						return nil
					}
				}
				return fmt.Errorf("A %s: expected %s, got %v", name, ip, resp.Answers)
			},
		})
	}
	return tests
}
