// Package suts defines the contract between the ConfErr engine and a
// system under test (SUT), and hosts the simulated targets in its
// subpackages.
//
// The paper drives real server binaries (MySQL, Postgres, Apache, BIND,
// djbdns) via start/stop scripts. This reproduction substitutes simulated
// SUTs — real network servers whose configuration parsers faithfully model
// the documented behaviours of the originals (see DESIGN.md §2) — plus an
// external-process path via internal/proc and cmd/sutd.
package suts

import (
	"errors"
	"fmt"
	"time"
)

// Files maps logical configuration file names to their serialized content,
// as delivered to a SUT at startup. The content slices are read-only: the
// engine's incremental pipeline hands the same cached baseline bytes to
// every experiment of a campaign (and, under parallelism, to every
// worker), so a SUT that needs to rewrite file content must copy it first.
type Files map[string][]byte

// System is a system under test. Implementations must be restartable: the
// engine calls Start/Stop once per injection experiment.
type System interface {
	// Name identifies the SUT (e.g. "mysql-sim").
	Name() string
	// DefaultConfig returns the initial (valid) configuration files the
	// campaign mutates — the equivalent of the default files that ship
	// with the system (paper §5.1).
	DefaultConfig() Files
	// Start parses the given configuration and brings the system up. A
	// returned error means the SUT detected a problem at startup; the
	// error text is recorded in the resilience profile. The files' byte
	// slices are shared with other experiments and must not be mutated
	// (see Files). The map itself is engine scratch reused between
	// experiments: retain the byte slices if needed, never the map.
	Start(files Files) error
	// Stop shuts the system down and releases its resources. It must be
	// safe to call after a failed Start.
	Stop() error
}

// Addressable is implemented by SUTs that serve a network endpoint;
// functional tests use Addr to reach the running system.
type Addressable interface {
	// Addr returns the listening address ("host:port") of the running
	// system. Only valid between a successful Start and Stop.
	Addr() string
}

// Reloader is an optional capability: a SUT that can swap its
// configuration on a warm, already-running instance — the `nginx -s
// reload` / SIGHUP idiom. The pooled lifecycle (internal/sutpool) uses it
// to avoid one cold start/stop cycle per injection experiment.
//
// Reload follows the same error taxonomy as Start: a *StartupError means
// the SUT itself rejected the new configuration, and its text must be
// byte-identical to what Start would report for the same files — the
// resilience profile must not depend on the lifecycle mode. After a
// rejected reload the instance keeps serving its previous configuration
// and stays warm. Any other error means the reload wedged the instance;
// the pool quarantines it and falls back to a cold restart.
type Reloader interface {
	// Reload applies a new configuration to the running system. Same
	// Files sharing contract as System.Start.
	Reload(files Files) error
}

// DirtyReloader is an optional refinement of Reloader: a SUT that can
// exploit the engine's knowledge of which configuration files an
// experiment actually changed. The incremental injection pipeline
// serializes only the mutated files and hands every clean file the
// campaign baseline's exact byte slice, so a SUT holding a memoized
// parse of the baseline (see ParseMemo) can skip re-parsing everything
// not named in dirty.
//
// The contract is strictly observational: ReloadDirty(files, dirty)
// must behave byte-identically to Reload(files) — same applied
// configuration, same rejection wording, same error taxonomy. dirty
// names the files whose content may differ from the campaign baseline
// for THIS experiment (not from the previously applied configuration:
// a file clean now may have been mutated by the last experiment, so
// "clean" only licenses reusing a parse of the baseline, never skipping
// the apply). dirty is engine scratch, valid only for the call.
type DirtyReloader interface {
	Reloader
	// ReloadDirty applies files like Reload, where every file not named
	// in dirty is byte-identical to the campaign baseline.
	ReloadDirty(files Files, dirty []string) error
}

// DirtyStarter is implemented by lifecycle adapters (internal/sutpool,
// the runner's port-mapping wrapper) that can forward the engine's
// dirty-file knowledge toward a DirtyReloader. The engine calls
// StartDirty instead of Start when the capability is present anywhere
// on the wrapper chain; implementations without a warm DirtyReloader
// underneath must degrade to exactly Start's behaviour.
type DirtyStarter interface {
	// StartDirty is Start plus the dirty-file set, same contract as
	// DirtyReloader.ReloadDirty for the dirty parameter.
	StartDirty(files Files, dirty []string) error
}

// Validator is an optional capability: a SUT that can parse and check a
// configuration without binding listeners or serving — the `nginx -t` /
// `postgres -C` idiom. It detects exactly the startup-time rejections
// (returned as *StartupError, byte-identical to Start's), but a nil
// return only means "would parse": runtime-only failures (port already
// bound) and everything functional tests would catch are invisible to
// it, so validate-only campaigns trade outcome fidelity for speed.
type Validator interface {
	// Validate checks the configuration without starting the system.
	// Same Files sharing contract as System.Start.
	Validate(files Files) error
}

// HealthChecker is an optional capability used by the pooled lifecycle
// to decide whether a warm instance can be reused for the next
// experiment or must be quarantined and cold-restarted.
type HealthChecker interface {
	// Health returns nil when the running system is still serving.
	Health() error
}

// StartupError is returned by System.Start when the SUT's own
// configuration parsing or validation rejects the configuration — the
// "detected by system at startup" outcome.
type StartupError struct {
	// System is the SUT name.
	System string
	// Msg is the SUT's complaint, recorded in the profile.
	Msg string
}

// Error implements the error interface.
func (e *StartupError) Error() string {
	return fmt.Sprintf("%s: %s", e.System, e.Msg)
}

// IsStartupError reports whether err is a SUT startup rejection.
func IsStartupError(err error) bool {
	var se *StartupError
	return errors.As(err, &se)
}

// PhaseTimeoutError is returned by the engine's phase watchdog when one
// SUT lifecycle phase (start, reload, probe, stop) exceeds its deadline.
// It is an infrastructure failure, not a SUT verdict: the experiment is
// recorded with the InfrastructureError outcome and the campaign
// continues. The wedged instance is quarantined; the stuck call keeps
// running on an abandoned goroutine until it returns (goroutines cannot
// be killed), at which point the instance is torn down.
type PhaseTimeoutError struct {
	// System is the SUT name.
	System string
	// Phase names the phase that timed out: "start", "probe:<test>",
	// "stop", or "release".
	Phase string
	// Timeout is the deadline that expired — the smaller of the phase
	// budget and what remained of the experiment budget.
	Timeout time.Duration
	// Elapsed is how long the phase had been running when it was
	// abandoned.
	Elapsed time.Duration
}

// Error implements the error interface.
func (e *PhaseTimeoutError) Error() string {
	return fmt.Sprintf("%s: watchdog: %s phase exceeded %v deadline (elapsed %v)",
		e.System, e.Phase, e.Timeout, e.Elapsed.Round(time.Millisecond))
}

// IsPhaseTimeout reports whether err is a watchdog phase timeout.
func IsPhaseTimeout(err error) bool {
	var pe *PhaseTimeoutError
	return errors.As(err, &pe)
}

// PhasePanicError is produced by the engine's panic containment when a
// SUT phase or functional test panics. Like PhaseTimeoutError it is an
// infrastructure failure: recorded, never fatal to the campaign.
type PhasePanicError struct {
	// System is the SUT name.
	System string
	// Phase names the panicking phase.
	Phase string
	// Value is the recovered panic value, rendered with %v.
	Value string
	// Stack is the goroutine stack at the point of the panic.
	Stack string
}

// Error implements the error interface.
func (e *PhasePanicError) Error() string {
	return fmt.Sprintf("%s: panic in %s phase: %s\n%s", e.System, e.Phase, e.Value, e.Stack)
}

// IsPhasePanic reports whether err is a recovered SUT-phase panic.
func IsPhasePanic(err error) bool {
	var pe *PhasePanicError
	return errors.As(err, &pe)
}

// Test is a functional test run against a started SUT — the equivalent of
// the paper's diagnostic scripts ("akin to what an administrator might do
// to check that a system is OK", §5.1).
type Test struct {
	// Name identifies the test in the profile.
	Name string
	// Run performs the check against the running SUT and returns an error
	// when the system misbehaves.
	Run func() error
}
