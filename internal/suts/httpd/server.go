package httpd

import (
	"bytes"
	stdcontext "context"
	"fmt"
	"net"
	"net/http"
	"slices"
	"strings"
	"sync"
	"time"

	"conferr/internal/suts"
	"conferr/internal/suts/httpprobe"
)

// ConfigFile is the logical name of the simulator's configuration file.
const ConfigFile = "httpd.conf"

// Server is the simulated Apache httpd.
type Server struct {
	port int
	tr   suts.Transport

	mu         sync.Mutex
	bound      map[int]net.Listener // live listeners by port
	order      []int                // bound ports in configuration order
	ps         *httpprobe.Server    // shared across ports; handler swapped on reload
	serverName string
	wg         sync.WaitGroup

	clientOnce sync.Once
	client     *http.Client

	// baseMemo caches the checked parse of the campaign-baseline
	// httpd.conf across warm reloads (see suts.ParseMemo).
	baseMemo suts.ParseMemo[parsed]
}

var _ suts.System = (*Server)(nil)
var _ suts.Addressable = (*Server)(nil)
var _ suts.Reloader = (*Server)(nil)
var _ suts.DirtyReloader = (*Server)(nil)
var _ suts.Validator = (*Server)(nil)
var _ suts.HealthChecker = (*Server)(nil)
var _ suts.TransportSetter = (*Server)(nil)

// New returns a simulator whose default configuration listens on the given
// TCP port (0 picks a free one at construction time).
func New(port int) (*Server, error) {
	if port == 0 {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("httpd: allocating port: %w", err)
		}
		port = ln.Addr().(*net.TCPAddr).Port
		if err := ln.Close(); err != nil {
			return nil, fmt.Errorf("httpd: releasing probe listener: %w", err)
		}
	}
	return &Server{port: port}, nil
}

// Name implements suts.System.
func (s *Server) Name() string { return "apache-sim" }

// DefaultPort returns the port of the default configuration.
func (s *Server) DefaultPort() int { return s.port }

// DefaultConfig implements suts.System: a configuration modeled on the
// stock httpd.conf of Apache 2.2, with 98 directives (paper §5.1)
// including nested sections.
func (s *Server) DefaultConfig() suts.Files {
	conf := fmt.Sprintf(`# Apache httpd 2.2 configuration
ServerRoot /etc/httpd
PidFile logs/httpd.pid
Timeout 120
KeepAlive Off
MaxKeepAliveRequests 100
KeepAliveTimeout 15
StartServers 8
MinSpareServers 5
MaxSpareServers 20
MaxClients 256
MaxRequestsPerChild 4000
Listen %d
LoadModule authz_host_module modules/mod_authz_host.so
LoadModule dir_module modules/mod_dir.so
LoadModule mime_module modules/mod_mime.so
LoadModule log_config_module modules/mod_log_config.so
LoadModule alias_module modules/mod_alias.so
LoadModule autoindex_module modules/mod_autoindex.so
LoadModule negotiation_module modules/mod_negotiation.so
LoadModule setenvif_module modules/mod_setenvif.so
User apache
Group apache
ServerAdmin root@localhost
ServerName www.example.com:80
UseCanonicalName Off
DocumentRoot /var/www/html
DirectoryIndex index.html index.html.var
AccessFileName .htaccess
TypesConfig /etc/mime.types
DefaultType text/plain
MimeMagicFile conf/magic
HostnameLookups Off
ErrorLog logs/error_log
LogLevel warn
LogFormat "%%h %%l %%u %%t \"%%r\" %%>s %%b" common
LogFormat "%%{Referer}i -> %%U" referer
LogFormat "%%{User-agent}i" agent
LogFormat "%%h %%l %%u %%t \"%%r\" %%>s %%b \"%%{Referer}i\" \"%%{User-Agent}i\"" combined
CustomLog logs/access_log combined
ServerTokens OS
ServerSignature On
Alias /icons/ /var/www/icons/
ScriptAlias /cgi-bin/ /var/www/cgi-bin/
IndexOptions FancyIndexing VersionSort NameWidth=*
AddIconByEncoding (CMP,/icons/compressed.gif) x-compress x-gzip
AddIconByType (TXT,/icons/text.gif) text/*
AddIconByType (IMG,/icons/image2.gif) image/*
AddIconByType (SND,/icons/sound2.gif) audio/*
AddIconByType (VID,/icons/movie.gif) video/*
AddIcon /icons/binary.gif .bin .exe
AddIcon /icons/binhex.gif .hqx
AddIcon /icons/tar.gif .tar
AddIcon /icons/world2.gif .wrl .vrml
AddIcon /icons/compressed.gif .Z .z .tgz .gz .zip
AddIcon /icons/a.gif .ps .ai .eps
AddIcon /icons/layout.gif .html .shtml .htm .pdf
AddIcon /icons/text.gif .txt
AddIcon /icons/c.gif .c
AddIcon /icons/p.gif .pl .py
AddIcon /icons/script.gif .conf .sh .shar
AddIcon /icons/folder.gif ^^DIRECTORY^^
AddIcon /icons/blank.gif ^^BLANKICON^^
DefaultIcon /icons/unknown.gif
ReadmeName README.html
HeaderName HEADER.html
AddLanguage ca .ca
AddLanguage cs .cz .cs
AddLanguage da .dk
AddLanguage de .de
AddLanguage en .en
AddLanguage es .es
AddLanguage fr .fr
AddLanguage it .it
AddLanguage ja .ja
AddLanguage pt .pt
LanguagePriority en ca cs da de es fr it ja pt
ForceLanguagePriority Prefer Fallback
AddType application/x-compress .Z
AddType application/x-gzip .gz .tgz
AddType application/x-tar .tar
AddType text/html .shtml
AddType application/x-x509-ca-cert .crt
AddType application/x-pkcs7-crl .crl
BrowserMatch "Mozilla/2" nokeepalive
BrowserMatch "MSIE 4\.0b2;" nokeepalive downgrade-1.0 force-response-1.0
BrowserMatch "RealPlayer 4\.0" force-response-1.0
BrowserMatch "Java/1\.0" force-response-1.0
BrowserMatch "JDK/1\.0" force-response-1.0
ErrorDocument 404 /missing.html

<Directory />
    Options FollowSymLinks
    AllowOverride None
</Directory>

<Directory /var/www/html>
    Options Indexes FollowSymLinks
    AllowOverride None
    Order allow,deny
    Allow from all
</Directory>

<Files ~ "^\.ht">
    Order allow,deny
    Deny from all
    Satisfy All
</Files>
`, s.port)
	return suts.Files{ConfigFile: []byte(conf)}
}

// vhost is one <VirtualHost> block: the name it answers to and a marker
// (its DocumentRoot) that responses embed, so functional tests can tell
// which host served them.
type vhost struct {
	serverName string
	docRoot    string
}

// parsed is the effective configuration.
type parsed struct {
	ports      []int
	serverName string
	vhosts     []vhost
}

// check parses and validates a configuration without touching listener
// state, erroring with httpd's startup wording.
func (s *Server) check(files suts.Files) (parsed, error) {
	data, ok := files[ConfigFile]
	if !ok {
		return parsed{}, &suts.StartupError{System: s.Name(), Msg: "missing " + ConfigFile}
	}
	cfg, err := parseConfig(string(data))
	if err != nil {
		return parsed{}, &suts.StartupError{System: s.Name(), Msg: err.Error()}
	}
	if len(cfg.ports) == 0 {
		return parsed{}, &suts.StartupError{System: s.Name(), Msg: "no listening sockets available (no Listen directive)"}
	}
	seen := map[int]bool{}
	for _, p := range cfg.ports {
		if seen[p] {
			return parsed{}, &suts.StartupError{System: s.Name(),
				Msg: fmt.Sprintf("could not bind to address 0.0.0.0:%d: Address already in use", p)}
		}
		seen[p] = true
	}
	return cfg, nil
}

// buildHandler renders one configuration's routing table.
func buildHandler(cfg parsed) httpprobe.Handler {
	vhosts := cfg.vhosts
	mainName := cfg.serverName
	return func(dst []byte, _, host []byte) ([]byte, int) {
		// Name-based virtual hosting: match the Host header against the
		// vhosts’ ServerNames; a vhost whose ServerName was omitted (the
		// §2.2 mistake) can never match, so its requests silently fall
		// through to the main server — misrouting only a functional test
		// of that host would notice.
		if i := bytes.LastIndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		for _, v := range vhosts {
			if v.serverName != "" && nameMatchesBytes(v.serverName, host) {
				return renderVhostBody(dst, v.serverName, v.docRoot), 200
			}
		}
		return renderMainBody(dst, mainName), 200
	}
}

// renderVhostBody and renderMainBody append the response bodies — the
// same bytes the net/http handler's Fprintf produced, shared with the
// contract tests so the two probe paths cannot drift.
func renderVhostBody(dst []byte, serverName, docRoot string) []byte {
	dst = append(dst, "<html><body><h1>It works!</h1><p>"...)
	dst = append(dst, serverName...)
	dst = append(dst, "</p><p>root="...)
	dst = append(dst, docRoot...)
	return append(dst, "</p></body></html>\n"...)
}

func renderMainBody(dst []byte, serverName string) []byte {
	dst = append(dst, "<html><body><h1>It works!</h1><p>"...)
	dst = append(dst, serverName...)
	return append(dst, "</p></body></html>\n"...)
}

// Start implements suts.System.
func (s *Server) Start(files suts.Files) error { return s.configure(files) }

// Reload implements suts.Reloader: httpd's graceful-restart idiom.
// Configuration errors are rejected with Start's exact wording while the
// previous configuration keeps serving; ports shared between old and new
// configuration keep their listener, only the routing table is swapped.
func (s *Server) Reload(files suts.Files) error { return s.configure(files) }

// ReloadDirty implements suts.DirtyReloader: a clean httpd.conf carries
// the campaign baseline's bytes, so the memoized baseline parse is
// applied without re-parsing. Observationally identical to Reload.
func (s *Server) ReloadDirty(files suts.Files, dirty []string) error {
	data, ok := files[ConfigFile]
	if ok && !slices.Contains(dirty, ConfigFile) {
		if cfg, hit := s.baseMemo.Get(data); hit {
			return s.apply(cfg)
		}
		cfg, err := s.check(files)
		if err != nil {
			return err
		}
		s.baseMemo.Put(data, cfg)
		return s.apply(cfg)
	}
	return s.configure(files)
}

// Validate implements suts.Validator: the `apachectl configtest` parse
// path. It detects exactly Start's configuration rejections; bind-time
// failures are invisible to it.
func (s *Server) Validate(files suts.Files) error {
	_, err := s.check(files)
	return err
}

// configure drives the server to the given configuration from whatever
// is currently bound. On error the previous state is untouched (empty
// for a cold start).
func (s *Server) configure(files suts.Files) error {
	cfg, err := s.check(files)
	if err != nil {
		return err
	}
	return s.apply(cfg)
}

// apply drives the listener and routing state to a checked
// configuration.
func (s *Server) apply(cfg parsed) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Bind the ports the new configuration adds, in configuration order
	// so a multi-failure reports the same port a cold start would.
	created := map[int]net.Listener{}
	for _, p := range cfg.ports {
		if _, held := s.bound[p]; held {
			continue
		}
		ln, err := s.transport().Listen(fmt.Sprintf("127.0.0.1:%d", p))
		if err != nil {
			for _, l := range created {
				_ = l.Close()
			}
			return &suts.StartupError{System: s.Name(),
				Msg: fmt.Sprintf("could not bind to port %d: %v", p, err)}
		}
		created[p] = ln
	}

	// Commit: adopt the new bindings, swap the routing table, drop ports
	// the new configuration no longer listens on.
	s.serverName = cfg.serverName
	if s.ps == nil {
		s.ps = httpprobe.NewServer("Apache-sim/2.2", nil)
	}
	if s.bound == nil {
		s.bound = map[int]net.Listener{}
	}
	for p, ln := range created {
		s.bound[p] = ln
		s.wg.Add(1)
		go func(ps *httpprobe.Server, l net.Listener) {
			defer s.wg.Done()
			ps.Serve(l)
		}(s.ps, ln)
	}
	want := map[int]bool{}
	for _, p := range cfg.ports {
		want[p] = true
	}
	for p, ln := range s.bound {
		if !want[p] {
			_ = ln.Close()
			delete(s.bound, p)
		}
	}
	s.ps.SetHandler(buildHandler(cfg))
	s.order = cfg.ports
	return nil
}

// Stop implements suts.System.
func (s *Server) Stop() error {
	s.mu.Lock()
	bound := s.bound
	ps := s.ps
	s.bound = nil
	s.order = nil
	s.ps = nil
	s.mu.Unlock()
	for _, l := range bound {
		_ = l.Close()
	}
	if ps != nil {
		ps.Close()
	}
	s.wg.Wait()
	return nil
}

// Health implements suts.HealthChecker.
func (s *Server) Health() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.bound) == 0 {
		return fmt.Errorf("apache-sim: no listeners bound")
	}
	return nil
}

// SetTransport implements suts.TransportSetter. Must be called before
// Start; it moves both the listeners and the functional tests’ dials.
func (s *Server) SetTransport(t suts.Transport) { s.tr = t }

// transport returns the configured transport, defaulting to TCP.
func (s *Server) transport() suts.Transport {
	if s.tr == nil {
		return suts.TCPTransport{}
	}
	return s.tr
}

// Addr implements suts.Addressable (first configured port’s listener).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.order {
		if ln, ok := s.bound[p]; ok {
			return ln.Addr().String()
		}
	}
	return ""
}

// nameMatchesBytes compares a ServerName (which may carry a ":port"
// suffix) against a request host, case-insensitively and without
// allocating (both sides are ASCII).
func nameMatchesBytes(serverName string, host []byte) bool {
	if i := strings.LastIndexByte(serverName, ':'); i >= 0 {
		serverName = serverName[:i]
	}
	return httpprobe.EqualFold(host, serverName)
}

// parseConfig applies httpd's configuration semantics: nested sections
// with context checking, case-insensitive directive lookup, per-kind
// argument validation.
func parseConfig(conf string) (parsed, error) {
	var cfg parsed
	type frame struct {
		ctx   context
		tag   string
		vhost *vhost
	}
	stack := []frame{{ctx: ctxServer}}
	for lineno, line := range strings.Split(conf, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(t, "</"):
			if !strings.HasSuffix(t, ">") || len(stack) == 1 {
				return cfg, fmt.Errorf("syntax error on line %d: %s without matching section", lineno+1, t)
			}
			name := strings.TrimSpace(t[2 : len(t)-1])
			top := stack[len(stack)-1]
			if !strings.EqualFold(top.tag, name) {
				return cfg, fmt.Errorf("syntax error on line %d: expected </%s> but saw </%s>",
					lineno+1, top.tag, name)
			}
			stack = stack[:len(stack)-1]
		case strings.HasPrefix(t, "<"):
			if !strings.HasSuffix(t, ">") {
				return cfg, fmt.Errorf("syntax error on line %d: malformed section", lineno+1)
			}
			inner := t[1 : len(t)-1]
			tag := inner
			if i := strings.IndexAny(inner, " \t"); i >= 0 {
				tag = inner[:i]
			}
			var ctx context
			switch strings.ToLower(tag) {
			case "directory", "location":
				ctx = ctxDirectory
			case "files", "filesmatch":
				ctx = ctxFiles
			case "virtualhost":
				ctx = ctxVirtualHost
			case "ifmodule":
				// Transparent container: inherits the enclosing context.
				ctx = stack[len(stack)-1].ctx
			default:
				return cfg, fmt.Errorf("syntax error on line %d: unknown section <%s>", lineno+1, tag)
			}
			fr := frame{ctx: ctx, tag: tag}
			if ctx == ctxVirtualHost {
				cfg.vhosts = append(cfg.vhosts, vhost{})
				fr.vhost = &cfg.vhosts[len(cfg.vhosts)-1]
			}
			stack = append(stack, fr)
		default:
			name := t
			args := ""
			if i := strings.IndexAny(t, " \t"); i >= 0 {
				name, args = t[:i], strings.TrimSpace(t[i:])
			}
			def := lookupDirective(name)
			if def == nil {
				return cfg, fmt.Errorf(
					"Invalid command '%s', perhaps misspelled or defined by a module not included in the server configuration",
					name)
			}
			ctx := stack[len(stack)-1].ctx
			if !def.allowedIn(ctx) {
				return cfg, fmt.Errorf("%s not allowed here", def.name)
			}
			port, err := validateArgs(def, args)
			if err != nil {
				return cfg, err
			}
			top := stack[len(stack)-1]
			switch {
			case def.kind == argPort:
				cfg.ports = append(cfg.ports, port)
			case strings.EqualFold(def.name, "ServerName"):
				if top.vhost != nil {
					top.vhost.serverName = args
				} else {
					cfg.serverName = args
				}
			case strings.EqualFold(def.name, "DocumentRoot") && top.vhost != nil:
				top.vhost.docRoot = args
			}
		}
	}
	if len(stack) != 1 {
		return cfg, fmt.Errorf("syntax error: unclosed section <%s>", stack[len(stack)-1].tag)
	}
	return cfg, nil
}

// httpClient returns the server’s shared functional-test client; dials
// go through the configured transport, read at dial time.
func (s *Server) httpClient() *http.Client {
	s.clientOnce.Do(func() {
		s.client = &http.Client{
			Timeout: 5 * time.Second,
			Transport: &http.Transport{
				DialContext: func(ctx stdcontext.Context, network, addr string) (net.Conn, error) {
					return s.transport().Dial(addr)
				},
				MaxIdleConnsPerHost: 4,
			},
		}
	})
	return s.client
}

// Tests returns the paper's web-server diagnosis (§5.1): an HTTP GET of
// a page from the default port, on the httpprobe fast path (prebuilt
// request, warm connection, zero allocations on success). Outcomes and
// error wording are byte-identical to ReferenceTests — the facade's
// contract test holds both paths to that.
func Tests(s *Server) []suts.Test {
	var (
		once   sync.Once
		client *httpprobe.Client
		probe  *httpprobe.Probe
	)
	return []suts.Test{{
		Name: "http-get",
		Run: func() error {
			once.Do(func() {
				client = httpprobe.NewClient(func(addr string) (net.Conn, error) {
					return s.transport().Dial(addr)
				}, 5*time.Second)
				probe = httpprobe.NewProbe(fmt.Sprintf("127.0.0.1:%d", s.DefaultPort()), "/", "")
			})
			status, _, err := client.Do(probe)
			if err != nil {
				return fmt.Errorf("GET: %w", err)
			}
			if status != http.StatusOK {
				return fmt.Errorf("status %d", status)
			}
			return nil
		},
	}}
}

// ReferenceTests is the pre-fast-path probe implementation on the stock
// net/http client, kept verbatim as the fidelity reference for the
// contract test.
func ReferenceTests(s *Server) []suts.Test {
	return []suts.Test{{
		Name: "http-get",
		Run: func() error {
			client := s.httpClient()
			resp, err := client.Get(fmt.Sprintf("http://127.0.0.1:%d/", s.DefaultPort()))
			if err != nil {
				return fmt.Errorf("GET: %w", err)
			}
			defer func() { _ = resp.Body.Close() }()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			return nil
		},
	}}
}
