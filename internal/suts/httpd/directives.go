// Package httpd simulates the Apache 2.2 web server for ConfErr
// campaigns. The simulator serves real HTTP (net/http) and reproduces the
// configuration behaviours the paper's findings rest on (§5.2, §5.3):
//
//   - directive names are case-insensitive (Table 2); unknown directives
//     abort startup ("Invalid command ..."), truncated names do not work;
//   - MIME-type directives (AddType, DefaultType), ServerAdmin and
//     ServerName accept freeform strings without validation — the
//     weaknesses the paper reports;
//   - core numeric directives (Timeout, MaxClients, …) and keyword
//     directives (LogLevel, Options, KeepAlive, …) are validated;
//   - Listen validates that its argument is a numeric port, so only a typo
//     that yields a different valid number survives to be caught by the
//     functional tests (the paper's 5%);
//   - directives are restricted to their allowed contexts, so structural
//     faults that move a directive into the wrong section can fail
//     startup, as in real Apache ("... not allowed here").
package httpd

import (
	"fmt"
	"strconv"
	"strings"
)

// context is a configuration context a directive may appear in.
type context int

const (
	ctxServer context = iota + 1
	ctxVirtualHost
	ctxDirectory
	ctxFiles
)

// argKind is the validation class of a directive's arguments.
type argKind int

const (
	argFreeform argKind = iota + 1
	argNumber           // single integer with bounds
	argEnum             // single keyword from a fixed set
	argKeywords         // one or more keywords from a fixed set (Options)
	argPort             // Listen: numeric port 1..65535
	argModule           // LoadModule: known module name + path
	argOnOff            // On|Off
)

// directiveDef describes one configuration directive.
type directiveDef struct {
	name     string
	kind     argKind
	min, max int64
	keywords []string
	contexts []context
}

// knownModules are the modules the simulated server can "load"; a typo in
// a module name or path is detected at startup like real httpd's "Cannot
// load ... into server".
var knownModules = map[string]string{
	"authz_host_module":  "modules/mod_authz_host.so",
	"dir_module":         "modules/mod_dir.so",
	"mime_module":        "modules/mod_mime.so",
	"log_config_module":  "modules/mod_log_config.so",
	"alias_module":       "modules/mod_alias.so",
	"autoindex_module":   "modules/mod_autoindex.so",
	"negotiation_module": "modules/mod_negotiation.so",
	"setenvif_module":    "modules/mod_setenvif.so",
}

// anywhere marks directives legal in all contexts.
var anywhere = []context{ctxServer, ctxVirtualHost, ctxDirectory, ctxFiles}

var serverOnly = []context{ctxServer}

var serverOrVHost = []context{ctxServer, ctxVirtualHost}

// directives is the registry of modeled Apache directives.
var directives = []directiveDef{
	{name: "ServerRoot", kind: argFreeform, contexts: serverOnly},
	{name: "Listen", kind: argPort, contexts: serverOnly},
	{name: "LoadModule", kind: argModule, contexts: serverOnly},
	{name: "User", kind: argFreeform, contexts: serverOnly},
	{name: "Group", kind: argFreeform, contexts: serverOnly},
	// The paper's flaw findings: these accept anything.
	{name: "ServerAdmin", kind: argFreeform, contexts: serverOrVHost},
	{name: "ServerName", kind: argFreeform, contexts: serverOrVHost},
	{name: "AddType", kind: argFreeform, contexts: anywhere},
	{name: "DefaultType", kind: argFreeform, contexts: anywhere},
	{name: "AddLanguage", kind: argFreeform, contexts: anywhere},
	{name: "AddIcon", kind: argFreeform, contexts: anywhere},
	{name: "AddIconByType", kind: argFreeform, contexts: anywhere},
	{name: "AddIconByEncoding", kind: argFreeform, contexts: anywhere},
	{name: "DefaultIcon", kind: argFreeform, contexts: anywhere},
	{name: "ReadmeName", kind: argFreeform, contexts: anywhere},
	{name: "HeaderName", kind: argFreeform, contexts: anywhere},
	{name: "DocumentRoot", kind: argFreeform, contexts: serverOrVHost},
	{name: "ErrorLog", kind: argFreeform, contexts: serverOrVHost},
	{name: "CustomLog", kind: argFreeform, contexts: serverOrVHost},
	{name: "TransferLog", kind: argFreeform, contexts: serverOrVHost},
	{name: "LogFormat", kind: argFreeform, contexts: serverOrVHost},
	{name: "PidFile", kind: argFreeform, contexts: serverOnly},
	{name: "TypesConfig", kind: argFreeform, contexts: serverOnly},
	{name: "MimeMagicFile", kind: argFreeform, contexts: serverOnly},
	{name: "Alias", kind: argFreeform, contexts: serverOrVHost},
	{name: "ScriptAlias", kind: argFreeform, contexts: serverOrVHost},
	{name: "DirectoryIndex", kind: argFreeform, contexts: anywhere},
	{name: "AccessFileName", kind: argFreeform, contexts: serverOrVHost},
	{name: "IndexOptions", kind: argFreeform, contexts: anywhere},
	{name: "LanguagePriority", kind: argFreeform, contexts: anywhere},
	{name: "ForceLanguagePriority", kind: argFreeform, contexts: anywhere},
	{name: "BrowserMatch", kind: argFreeform, contexts: serverOrVHost},
	{name: "SetEnvIf", kind: argFreeform, contexts: serverOrVHost},
	{name: "ErrorDocument", kind: argFreeform, contexts: anywhere},
	{name: "NameVirtualHost", kind: argFreeform, contexts: serverOnly},

	// Validated numeric directives.
	{name: "Timeout", kind: argNumber, min: 0, max: 1 << 31, contexts: serverOnly},
	{name: "KeepAliveTimeout", kind: argNumber, min: 0, max: 1 << 31, contexts: serverOnly},
	{name: "MaxKeepAliveRequests", kind: argNumber, min: 0, max: 1 << 31, contexts: serverOnly},
	{name: "StartServers", kind: argNumber, min: 0, max: 10000, contexts: serverOnly},
	{name: "MinSpareServers", kind: argNumber, min: 1, max: 10000, contexts: serverOnly},
	{name: "MaxSpareServers", kind: argNumber, min: 1, max: 10000, contexts: serverOnly},
	{name: "MaxClients", kind: argNumber, min: 1, max: 20000, contexts: serverOnly},
	{name: "MaxRequestsPerChild", kind: argNumber, min: 0, max: 1 << 31, contexts: serverOnly},
	{name: "ServerLimit", kind: argNumber, min: 1, max: 20000, contexts: serverOnly},
	{name: "ThreadsPerChild", kind: argNumber, min: 1, max: 20000, contexts: serverOnly},

	// Validated keyword directives.
	{name: "KeepAlive", kind: argOnOff, contexts: serverOnly},
	{name: "HostnameLookups", kind: argEnum, keywords: []string{"On", "Off", "Double"}, contexts: anywhere},
	{name: "ServerTokens", kind: argEnum, keywords: []string{"Major", "Minor", "Min", "Minimal", "Prod", "ProductOnly", "OS", "Full"}, contexts: serverOnly},
	{name: "ServerSignature", kind: argEnum, keywords: []string{"On", "Off", "EMail"}, contexts: anywhere},
	{name: "LogLevel", kind: argEnum, keywords: []string{"debug", "info", "notice", "warn", "error", "crit", "alert", "emerg"}, contexts: serverOrVHost},
	{name: "UseCanonicalName", kind: argEnum, keywords: []string{"On", "Off", "DNS"}, contexts: anywhere},
	{name: "EnableMMAP", kind: argOnOff, contexts: anywhere},
	{name: "EnableSendfile", kind: argOnOff, contexts: anywhere},
	{name: "Options", kind: argKeywords, keywords: []string{"None", "All", "Indexes", "Includes", "IncludesNOEXEC", "FollowSymLinks", "SymLinksIfOwnerMatch", "ExecCGI", "MultiViews"}, contexts: anywhere},
	{name: "AllowOverride", kind: argKeywords, keywords: []string{"None", "All", "AuthConfig", "FileInfo", "Indexes", "Limit", "Options"}, contexts: []context{ctxDirectory}},
	{name: "Order", kind: argEnum, keywords: []string{"allow,deny", "deny,allow", "mutual-failure"}, contexts: []context{ctxDirectory, ctxFiles}},
	{name: "Allow", kind: argFreeform, contexts: []context{ctxDirectory, ctxFiles}},
	{name: "Deny", kind: argFreeform, contexts: []context{ctxDirectory, ctxFiles}},
	{name: "Satisfy", kind: argEnum, keywords: []string{"All", "Any"}, contexts: []context{ctxDirectory, ctxFiles}},
}

// lookupDirective resolves a directive name case-insensitively (Table 2:
// Apache accepts mixed-case names; it does not accept truncations).
func lookupDirective(name string) *directiveDef {
	for i := range directives {
		if strings.EqualFold(directives[i].name, name) {
			return &directives[i]
		}
	}
	return nil
}

// validateArgs checks a directive's argument string against its kind,
// returning the parsed port for Listen.
func validateArgs(def *directiveDef, args string) (int, error) {
	args = strings.TrimSpace(args)
	switch def.kind {
	case argFreeform:
		return 0, nil
	case argNumber:
		n, err := strconv.ParseInt(args, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s must be a number, got %q", def.name, args)
		}
		if n < def.min || n > def.max {
			return 0, fmt.Errorf("%s value %d out of range [%d, %d]", def.name, n, def.min, def.max)
		}
		return 0, nil
	case argPort:
		// Listen accepts "port" or "address:port"; the port must be numeric.
		portStr := args
		if i := strings.LastIndexByte(args, ':'); i >= 0 {
			portStr = args[i+1:]
		}
		n, err := strconv.Atoi(portStr)
		if err != nil {
			return 0, fmt.Errorf("%s requires a numeric port, got %q", def.name, args)
		}
		if n < 1 || n > 65535 {
			return 0, fmt.Errorf("%s port %d out of range", def.name, n)
		}
		return n, nil
	case argOnOff:
		if !strings.EqualFold(args, "On") && !strings.EqualFold(args, "Off") {
			return 0, fmt.Errorf("%s must be On or Off, got %q", def.name, args)
		}
		return 0, nil
	case argEnum:
		for _, k := range def.keywords {
			if strings.EqualFold(k, args) {
				return 0, nil
			}
		}
		return 0, fmt.Errorf("%s: unknown keyword %q", def.name, args)
	case argKeywords:
		for _, word := range strings.Fields(args) {
			word = strings.TrimLeft(word, "+-")
			ok := false
			for _, k := range def.keywords {
				if strings.EqualFold(k, word) {
					ok = true
					break
				}
			}
			if !ok {
				return 0, fmt.Errorf("%s: unknown keyword %q", def.name, word)
			}
		}
		return 0, nil
	case argModule:
		fields := strings.Fields(args)
		if len(fields) != 2 {
			return 0, fmt.Errorf("LoadModule takes two arguments, got %q", args)
		}
		path, ok := knownModules[fields[0]]
		if !ok {
			return 0, fmt.Errorf("Cannot load module %q into server", fields[0])
		}
		if path != fields[1] {
			return 0, fmt.Errorf("Cannot load %q into server: no such file", fields[1])
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("internal: unhandled arg kind %d", def.kind)
	}
}

// allowedIn reports whether the directive may appear in the given context.
func (d *directiveDef) allowedIn(ctx context) bool {
	for _, c := range d.contexts {
		if c == ctx {
			return true
		}
	}
	return false
}
