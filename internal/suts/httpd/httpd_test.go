package httpd

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"conferr/internal/suts"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func startWith(t *testing.T, s *Server, conf string) error {
	t.Helper()
	return s.Start(suts.Files{ConfigFile: []byte(conf)})
}

func minimalConf(port int) string {
	return fmt.Sprintf("Listen %d\nServerName test.example.com\n", port)
}

func TestDefaultConfigStartsAndServes(t *testing.T) {
	s := newServer(t)
	if err := s.Start(s.DefaultConfig()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()
	for _, test := range Tests(s) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test %s: %v", test.Name, err)
		}
	}
	resp, err := http.Get("http://" + s.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Server"); !strings.Contains(got, "Apache-sim") {
		t.Errorf("Server header = %q", got)
	}
}

func TestDefaultConfigHas98Directives(t *testing.T) {
	// Paper §5.1: Apache's default configuration has 98 directives.
	s := newServer(t)
	conf := string(s.DefaultConfig()[ConfigFile])
	count := 0
	for _, line := range strings.Split(conf, "\n") {
		tl := strings.TrimSpace(line)
		if tl == "" || strings.HasPrefix(tl, "#") || strings.HasPrefix(tl, "<") {
			continue
		}
		count++
	}
	if count != 98 {
		t.Errorf("default config has %d directives, want 98", count)
	}
}

func TestUnknownDirectiveRejected(t *testing.T) {
	s := newServer(t)
	err := startWith(t, s, "Lisden 8080\n")
	if err == nil {
		s.Stop()
		t.Fatal("typo in directive name accepted")
	}
	if !suts.IsStartupError(err) || !strings.Contains(err.Error(), "Invalid command") {
		t.Errorf("err = %v", err)
	}
}

func TestCaseInsensitiveNames(t *testing.T) {
	// Table 2: Apache accepts mixed-case directive names.
	s := newServer(t)
	if err := startWith(t, s, fmt.Sprintf("LISTEN %d\nservername x\n", s.DefaultPort())); err != nil {
		t.Fatalf("mixed-case rejected: %v", err)
	}
	s.Stop()
}

func TestTruncatedNamesRejected(t *testing.T) {
	// Table 2: Apache does not accept truncated directive names.
	s := newServer(t)
	if err := startWith(t, s, fmt.Sprintf("List %d\n", s.DefaultPort())); err == nil {
		s.Stop()
		t.Fatal("truncated name accepted")
	}
}

// Paper §5.2 Apache flaw findings as regression tests.

func TestFindingFreeformMimeAndAdminValues(t *testing.T) {
	s := newServer(t)
	conf := minimalConf(s.DefaultPort()) + `AddType not-a-mime-type .x
DefaultType garbage!!
ServerAdmin not an email or URL
`
	if err := startWith(t, s, conf); err != nil {
		t.Fatalf("freeform values rejected, want accepted (the flaw): %v", err)
	}
	s.Stop()
}

func TestFindingServerNameAcceptsAnything(t *testing.T) {
	s := newServer(t)
	conf := fmt.Sprintf("Listen %d\nServerName ...definitely not a hostname!!!\n", s.DefaultPort())
	if err := startWith(t, s, conf); err != nil {
		t.Fatalf("ServerName junk rejected, want accepted (the flaw): %v", err)
	}
	s.Stop()
}

func TestListenRequiresNumericPort(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, "Listen 80a80\n"); err == nil {
		s.Stop()
		t.Fatal("non-numeric port accepted")
	}
	if err := startWith(t, s, "Listen 123456\n"); err == nil {
		s.Stop()
		t.Fatal("out-of-range port accepted")
	}
}

func TestListenPortTypoCaughtByFunctionalTest(t *testing.T) {
	// The paper's 5%: a typo that yields a different valid port starts the
	// server on the wrong port; only the functional test notices.
	s := newServer(t)
	other := newServer(t)
	if err := startWith(t, s, minimalConf(other.DefaultPort())); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()
	failed := false
	for _, test := range Tests(s) {
		if test.Run() != nil {
			failed = true
		}
	}
	if !failed {
		t.Error("functional test should fail when Listen port is mutated")
	}
}

func TestDuplicateListenRejected(t *testing.T) {
	s := newServer(t)
	p := s.DefaultPort()
	err := startWith(t, s, fmt.Sprintf("Listen %d\nListen %d\n", p, p))
	if err == nil {
		s.Stop()
		t.Fatal("duplicate Listen accepted")
	}
	if !strings.Contains(err.Error(), "already in use") {
		t.Errorf("err = %v", err)
	}
}

func TestMultipleListenPorts(t *testing.T) {
	s := newServer(t)
	other := newServer(t)
	conf := fmt.Sprintf("Listen %d\nListen %d\n", s.DefaultPort(), other.DefaultPort())
	if err := startWith(t, s, conf); err != nil {
		t.Fatalf("two Listen ports rejected: %v", err)
	}
	defer s.Stop()
	for _, p := range []int{s.DefaultPort(), other.DefaultPort()} {
		resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/", p))
		if err != nil {
			t.Errorf("GET port %d: %v", p, err)
			continue
		}
		resp.Body.Close()
	}
}

func TestNoListenDirective(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, "ServerName x\n"); err == nil {
		s.Stop()
		t.Fatal("config without Listen accepted")
	}
}

func TestNumericDirectiveValidation(t *testing.T) {
	s := newServer(t)
	base := minimalConf(s.DefaultPort())
	for _, bad := range []string{"Timeout 12o\n", "MaxClients abc\n", "MaxClients 0\n"} {
		if err := startWith(t, s, base+bad); err == nil {
			s.Stop()
			t.Errorf("accepted %q", bad)
		}
	}
	if err := startWith(t, s, base+"Timeout 300\n"); err != nil {
		t.Errorf("valid Timeout rejected: %v", err)
	} else {
		s.Stop()
	}
}

func TestKeywordDirectiveValidation(t *testing.T) {
	s := newServer(t)
	base := minimalConf(s.DefaultPort())
	for _, bad := range []string{
		"LogLevel wran\n",
		"KeepAlive Onn\n",
		"ServerTokens Fulll\n",
	} {
		if err := startWith(t, s, base+bad); err == nil {
			s.Stop()
			t.Errorf("accepted %q", bad)
		}
	}
	if err := startWith(t, s, base+"LogLevel debug\nKeepAlive On\n"); err != nil {
		t.Errorf("valid keywords rejected: %v", err)
	} else {
		s.Stop()
	}
}

func TestOptionsKeywordsValidated(t *testing.T) {
	s := newServer(t)
	base := minimalConf(s.DefaultPort())
	conf := base + "<Directory />\nOptions Indexes FolowSymLinks\n</Directory>\n"
	if err := startWith(t, s, conf); err == nil {
		s.Stop()
		t.Fatal("bad Options keyword accepted")
	}
	conf = base + "<Directory />\nOptions +Indexes -FollowSymLinks\n</Directory>\n"
	if err := startWith(t, s, conf); err != nil {
		t.Fatalf("+/- Options rejected: %v", err)
	}
	s.Stop()
}

func TestContextRestrictions(t *testing.T) {
	s := newServer(t)
	base := minimalConf(s.DefaultPort())
	// AllowOverride is only legal inside <Directory>.
	if err := startWith(t, s, base+"AllowOverride None\n"); err == nil {
		s.Stop()
		t.Fatal("AllowOverride at top level accepted")
	} else if !strings.Contains(err.Error(), "not allowed here") {
		t.Errorf("err = %v", err)
	}
	// Listen inside a Directory section is rejected.
	conf := base + fmt.Sprintf("<Directory />\nListen %d\n</Directory>\n", s.DefaultPort()+1)
	if err := startWith(t, s, conf); err == nil {
		s.Stop()
		t.Fatal("Listen inside Directory accepted")
	}
}

func TestIfModuleInheritsContext(t *testing.T) {
	s := newServer(t)
	conf := minimalConf(s.DefaultPort()) + "<IfModule mime_module>\nAddType text/html .shtml\n</IfModule>\n"
	if err := startWith(t, s, conf); err != nil {
		t.Fatalf("IfModule container rejected: %v", err)
	}
	s.Stop()
}

func TestLoadModuleValidation(t *testing.T) {
	s := newServer(t)
	base := minimalConf(s.DefaultPort())
	if err := startWith(t, s, base+"LoadModule mime_module modules/mod_mime.so\n"); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
	s.Stop()
	for _, bad := range []string{
		"LoadModule mime_moduel modules/mod_mime.so\n",
		"LoadModule mime_module modules/mod_mme.so\n",
		"LoadModule mime_module\n",
	} {
		if err := startWith(t, s, base+bad); err == nil {
			s.Stop()
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestSectionSyntaxErrors(t *testing.T) {
	s := newServer(t)
	base := minimalConf(s.DefaultPort())
	for _, bad := range []string{
		"<Directory />\n",              // unclosed
		"</Directory>\n",               // close without open
		"<Directory />\n</Files>\n",    // mismatch
		"<Bogus>\n</Bogus>\n",          // unknown section
		"<Directory /\nOptions None\n", // malformed
	} {
		if err := startWith(t, s, base+bad); err == nil {
			s.Stop()
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestRestartable(t *testing.T) {
	s := newServer(t)
	for i := 0; i < 3; i++ {
		if err := s.Start(s.DefaultConfig()); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if err := s.Stop(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stop(); err != nil {
		t.Errorf("idle Stop: %v", err)
	}
}

func TestMissingConfig(t *testing.T) {
	s := newServer(t)
	if err := s.Start(suts.Files{}); err == nil {
		s.Stop()
		t.Fatal("missing config accepted")
	}
}

// vhostConf builds a config with two named virtual hosts.
func vhostConf(port int) string {
	return fmt.Sprintf(`Listen %d
ServerName main.example.com
<VirtualHost *:%d>
    ServerName a.example.com
    DocumentRoot /var/www/a
</VirtualHost>
<VirtualHost *:%d>
    ServerName b.example.com
    DocumentRoot /var/www/b
</VirtualHost>
`, port, port, port)
}

// getHost performs an HTTP GET with an explicit Host header and returns
// the body.
func getHost(t *testing.T, addr, host string) string {
	t.Helper()
	req, err := http.NewRequest("GET", "http://"+addr+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = host
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	return string(buf[:n])
}

func TestVirtualHostRouting(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, vhostConf(s.DefaultPort())); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()
	if body := getHost(t, s.Addr(), "a.example.com"); !strings.Contains(body, "root=/var/www/a") {
		t.Errorf("vhost a body = %q", body)
	}
	if body := getHost(t, s.Addr(), "b.example.com"); !strings.Contains(body, "root=/var/www/b") {
		t.Errorf("vhost b body = %q", body)
	}
	// Unknown host falls through to the main server.
	if body := getHost(t, s.Addr(), "other.example.com"); !strings.Contains(body, "main.example.com") {
		t.Errorf("default body = %q", body)
	}
}

func TestFindingServerNameOmissionInVHostTolerated(t *testing.T) {
	// The paper's §2.2 motivating example: omitting the ServerName that
	// "has to be present in each subsection". Apache starts anyway; the
	// vhost silently stops matching and its requests land on the main
	// server — only a host-specific functional test notices.
	s := newServer(t)
	conf := strings.Replace(vhostConf(s.DefaultPort()), "    ServerName a.example.com\n", "", 1)
	if err := startWith(t, s, conf); err != nil {
		t.Fatalf("ServerName omission rejected at startup, want tolerated: %v", err)
	}
	defer s.Stop()
	body := getHost(t, s.Addr(), "a.example.com")
	if strings.Contains(body, "root=/var/www/a") {
		t.Error("nameless vhost still matched; omission had no effect")
	}
	if !strings.Contains(body, "main.example.com") {
		t.Errorf("misrouted request body = %q", body)
	}
	// The sibling vhost is unaffected.
	if body := getHost(t, s.Addr(), "b.example.com"); !strings.Contains(body, "root=/var/www/b") {
		t.Errorf("vhost b broken by sibling's omission: %q", body)
	}
}
