// Package djbdns simulates the djbdns 1.05 tinydns server for ConfErr
// campaigns. It serves real DNS over UDP and reproduces the behaviours the
// paper's Table 3 rests on (§5.4):
//
//   - the "=" data directive defines an address record and its reverse
//     PTR together, so whole classes of inconsistency cannot even be
//     written down — a strength of the configuration format;
//   - tinydns performs NO cross-record consistency checking: a CNAME
//     duplicating an NS owner or an MX pointing at an alias loads and
//     serves without complaint — errors (3) and (4) are not found.
//
// tinydns-data does validate line syntax (unknown directive characters and
// malformed addresses are rejected), which the simulator preserves.
package djbdns

import (
	"fmt"
	"strings"

	"conferr/internal/dnsmodel"
	"conferr/internal/dnswire"
	"conferr/internal/suts"
)

// DataFile is the logical name of tinydns's data file.
const DataFile = "data"

// Server is the simulated tinydns server.
type Server struct {
	port int

	srv     *dnswire.Server
	records []dnsmodel.Record
}

var _ suts.System = (*Server)(nil)
var _ suts.Addressable = (*Server)(nil)

// New returns a simulator whose default configuration listens on the given
// UDP port (0 picks a free one at construction time).
func New(port int) (*Server, error) {
	if port == 0 {
		probe := dnswire.NewServer(func(dnswire.Question) ([]dnswire.RR, []dnswire.RR, dnswire.RCode) {
			return nil, nil, dnswire.RCodeNoError
		})
		if err := probe.Listen("127.0.0.1:0"); err != nil {
			return nil, fmt.Errorf("djbdns: allocating port: %w", err)
		}
		addr := probe.Addr()
		if err := probe.Close(); err != nil {
			return nil, fmt.Errorf("djbdns: releasing probe: %w", err)
		}
		if _, err := fmt.Sscanf(addr[strings.LastIndexByte(addr, ':')+1:], "%d", &port); err != nil {
			return nil, fmt.Errorf("djbdns: parsing probe addr %q: %w", addr, err)
		}
	}
	return &Server{port: port}, nil
}

// Name implements suts.System.
func (s *Server) Name() string { return "djbdns-sim" }

// DefaultPort returns the port of the default configuration.
func (s *Server) DefaultPort() int { return s.port }

// DefaultConfig implements suts.System: the tinydns-data equivalent of the
// BIND simulator's zones. The hosts use "=" lines, which define the A and
// PTR records together; RP and HINFO have no native tinydns directive and
// are omitted (documented substitution, DESIGN.md).
func (s *Server) DefaultConfig() suts.Files {
	data := `# tinydns-data for example.com and its reverse zone
.example.com::ns1.example.com:3600
.2.0.192.in-addr.arpa::ns1.example.com:3600
=ns1.example.com:192.0.2.1:3600
=www.example.com:192.0.2.10:3600
=mail.example.com:192.0.2.20:3600
Cftp.example.com:www.example.com:3600
Cwebmail.example.com:mail.example.com:3600
@example.com::mail.example.com:10:3600
'example.com:v=spf1 mx -all:3600
`
	return suts.Files{DataFile: []byte(data)}
}

// Start implements suts.System: run the tinydns-data compilation (syntax
// checking only — no consistency checks) and serve the records.
func (s *Server) Start(files suts.Files) error {
	data, ok := files[DataFile]
	if !ok {
		return &suts.StartupError{System: s.Name(), Msg: "missing " + DataFile}
	}
	recs, err := dnsmodel.ParseTinyData(DataFile, data)
	if err != nil {
		return &suts.StartupError{System: s.Name(), Msg: err.Error()}
	}
	s.records = recs

	srv := dnswire.NewServer(s.answer)
	if err := srv.Listen(fmt.Sprintf("127.0.0.1:%d", s.port)); err != nil {
		return &suts.StartupError{System: s.Name(), Msg: err.Error()}
	}
	s.srv = srv
	return nil
}

// answer resolves one question; tinydns follows CNAMEs one hop within its
// own data.
func (s *Server) answer(q dnswire.Question) ([]dnswire.RR, []dnswire.RR, dnswire.RCode) {
	name := dnsmodel.Canon(q.Name)
	var answers []dnswire.RR
	nameExists := false
	for _, r := range s.records {
		if r.Owner != name {
			continue
		}
		nameExists = true
		t, _ := dnswire.TypeFromString(r.Type)
		if q.Type == dnswire.TypeANY || t == q.Type {
			answers = append(answers, dnswire.RR{Name: r.Owner, Type: t, TTL: r.TTL, Data: r.Data})
		} else if r.Type == "CNAME" {
			answers = append(answers, dnswire.RR{Name: r.Owner, Type: dnswire.TypeCNAME, TTL: r.TTL, Data: r.Data})
			for _, tr := range s.records {
				tt, _ := dnswire.TypeFromString(tr.Type)
				if tr.Owner == r.Data && tt == q.Type {
					answers = append(answers, dnswire.RR{Name: tr.Owner, Type: tt, TTL: tr.TTL, Data: tr.Data})
				}
			}
		}
	}
	if len(answers) > 0 {
		return answers, nil, dnswire.RCodeNoError
	}
	if nameExists {
		return nil, nil, dnswire.RCodeNoError
	}
	return nil, nil, dnswire.RCodeNXDomain
}

// Stop implements suts.System.
func (s *Server) Stop() error {
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	s.srv = nil
	return err
}

// Addr implements suts.Addressable.
func (s *Server) Addr() string {
	if s.srv == nil {
		return ""
	}
	return s.srv.Addr()
}
