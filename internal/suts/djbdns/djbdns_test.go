package djbdns

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"conferr/internal/dnswire"
	"conferr/internal/suts"
	"conferr/internal/suts/dnscheck"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func defaultAddr(s *Server) string {
	return fmt.Sprintf("127.0.0.1:%d", s.DefaultPort())
}

func TestDefaultConfigStartsAndServes(t *testing.T) {
	s := newServer(t)
	if err := s.Start(s.DefaultConfig()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()

	for _, test := range dnscheck.ZoneLivenessTests(defaultAddr(s),
		[]string{"example.com", "2.0.192.in-addr.arpa"}) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test %s: %v", test.Name, err)
		}
	}

	// '=' lines serve both the A and the derived PTR.
	resp, err := dnswire.Query(defaultAddr(s), "www.example.com", dnswire.TypeA, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data != "192.0.2.10" {
		t.Errorf("A www = %+v", resp.Answers)
	}
	resp, err = dnswire.Query(defaultAddr(s), "10.2.0.192.in-addr.arpa", dnswire.TypePTR, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data != "www.example.com" {
		t.Errorf("PTR = %+v", resp.Answers)
	}
}

func TestFindingNoConsistencyChecks(t *testing.T) {
	// Table 3 errors (3) and (4): tinydns accepts a CNAME duplicating the
	// NS owner and an MX pointing at an alias — "not found".
	s := newServer(t)
	files := s.DefaultConfig()
	data := string(files[DataFile])
	data += "Cexample.com:www.example.com:3600\n"
	data = strings.Replace(data,
		"@example.com::mail.example.com:10:3600",
		"@example.com::ftp.example.com:10:3600", 1)
	files[DataFile] = []byte(data)
	if err := s.Start(files); err != nil {
		t.Fatalf("consistency fault detected at startup (tinydns has no such checks): %v", err)
	}
	defer s.Stop()
	for _, test := range dnscheck.ZoneLivenessTests(defaultAddr(s),
		[]string{"example.com", "2.0.192.in-addr.arpa"}) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test failed (should pass): %v", err)
		}
	}
}

func TestSyntaxErrorsDetected(t *testing.T) {
	s := newServer(t)
	for _, bad := range []string{
		"Xunknown.example.com:1.2.3.4\n",
		"=www.example.com:not-an-ip:3600\n",
	} {
		files := suts.Files{DataFile: []byte(bad)}
		if err := s.Start(files); err == nil {
			s.Stop()
			t.Errorf("accepted %q", bad)
		} else if !suts.IsStartupError(err) {
			t.Errorf("err type = %T", err)
		}
	}
}

func TestMissingDataFile(t *testing.T) {
	s := newServer(t)
	if err := s.Start(suts.Files{}); err == nil {
		s.Stop()
		t.Fatal("missing data file accepted")
	}
}

func TestNXDomain(t *testing.T) {
	s := newServer(t)
	if err := s.Start(s.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	resp, err := dnswire.Query(defaultAddr(s), "nx.example.com", dnswire.TypeA, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestCNAMEChase(t *testing.T) {
	s := newServer(t)
	if err := s.Start(s.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	resp, err := dnswire.Query(defaultAddr(s), "webmail.example.com", dnswire.TypeA, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 2 || resp.Answers[1].Data != "192.0.2.20" {
		t.Errorf("chase = %+v", resp.Answers)
	}
}

func TestRestartable(t *testing.T) {
	s := newServer(t)
	for i := 0; i < 3; i++ {
		if err := s.Start(s.DefaultConfig()); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if err := s.Stop(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stop(); err != nil {
		t.Errorf("idle Stop: %v", err)
	}
}
