package postgres

import (
	"fmt"
	"net"
	"slices"
	"strings"

	"conferr/internal/sqlmini"
	"conferr/internal/suts"
)

// ConfigFile is the logical name of the simulator's configuration file.
const ConfigFile = "postgresql.conf"

// Server is the simulated PostgreSQL server.
type Server struct {
	port int
	tr   suts.Transport

	srv      *sqlmini.Server
	curAddr  string
	settings settings

	// baseMemo caches the checked parse of the campaign-baseline
	// postgresql.conf across warm reloads (see suts.ParseMemo).
	baseMemo suts.ParseMemo[checkedConfig]
}

// checkedConfig is a parsed-and-checked configuration, the unit the
// baseline memo caches.
type checkedConfig struct {
	st   settings
	addr string
}

// settings is the effective configuration after a successful parse.
type settings struct {
	ints    map[string]int64
	reals   map[string]float64
	bools   map[string]bool
	strs    map[string]string
	enums   map[string]string
	port    int64
	maxConn int64
	listen  string
}

var _ suts.System = (*Server)(nil)
var _ suts.Addressable = (*Server)(nil)
var _ suts.Reloader = (*Server)(nil)
var _ suts.DirtyReloader = (*Server)(nil)
var _ suts.Validator = (*Server)(nil)
var _ suts.HealthChecker = (*Server)(nil)
var _ suts.TransportSetter = (*Server)(nil)

// New returns a simulator whose default configuration listens on the given
// TCP port (0 picks a free one at construction time).
func New(port int) (*Server, error) {
	if port == 0 {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("postgres: allocating port: %w", err)
		}
		port = ln.Addr().(*net.TCPAddr).Port
		if err := ln.Close(); err != nil {
			return nil, fmt.Errorf("postgres: releasing probe listener: %w", err)
		}
	}
	return &Server{port: port}, nil
}

// Name implements suts.System.
func (s *Server) Name() string { return "postgres-sim" }

// DefaultPort returns the port of the default configuration.
func (s *Server) DefaultPort() int { return s.port }

// DefaultConfig implements suts.System. It mirrors the stock
// postgresql.conf of 8.2: 8 active directives (paper §5.1), including the
// max_fsm_pages default whose typo the paper uses as its constraint-check
// example.
func (s *Server) DefaultConfig() suts.Files {
	conf := fmt.Sprintf(`# PostgreSQL configuration file
listen_addresses = 'localhost'
port = %d
max_connections = 100
shared_buffers = 32MB
max_fsm_pages = 153600
datestyle = 'iso, mdy'
lc_messages = 'C'
log_destination = 'stderr'
`, s.port)
	return suts.Files{ConfigFile: []byte(conf)}
}

// FullConfig returns a configuration listing every modeled parameter with
// its default value, excluding booleans and parameters without defaults —
// the §5.5 comparison faultload ("a file containing most of the available
// directives, along with the default values").
func (s *Server) FullConfig() suts.Files {
	var b strings.Builder
	b.WriteString("# full parameter listing\n")
	for _, g := range gucs {
		if g.kind == kindBool || g.def == "" {
			continue
		}
		val := g.def
		if g.name == "port" {
			val = fmt.Sprint(s.port)
		}
		if g.kind == kindString || g.kind == kindEnum {
			val = "'" + val + "'"
		}
		fmt.Fprintf(&b, "%s = %s\n", g.name, val)
	}
	return suts.Files{ConfigFile: []byte(b.String())}
}

// check parses a configuration and resolves its listen address without
// touching server state. Errors carry postgres's FATAL startup wording.
func (s *Server) check(files suts.Files) (settings, string, error) {
	data, ok := files[ConfigFile]
	if !ok {
		return settings{}, "", &suts.StartupError{System: s.Name(), Msg: "missing " + ConfigFile}
	}
	st, err := parseConfig(string(data))
	if err != nil {
		return settings{}, "", &suts.StartupError{System: s.Name(), Msg: "FATAL: " + err.Error()}
	}

	// listen_addresses is a plain string parameter, but a host that does
	// not resolve fails at bind time — still a startup-visible failure.
	host := st.listen
	switch host {
	case "localhost", "127.0.0.1", "*", "0.0.0.0", "":
		host = "127.0.0.1"
	default:
		return settings{}, "", &suts.StartupError{System: s.Name(),
			Msg: fmt.Sprintf("FATAL: could not translate host name \"%s\" to address", st.listen)}
	}
	return st, fmt.Sprintf("%s:%d", host, st.port), nil
}

// Start implements suts.System.
func (s *Server) Start(files suts.Files) error {
	st, addr, err := s.check(files)
	if err != nil {
		return err
	}
	s.settings = st
	ln, err := s.transport().Listen(addr)
	if err != nil {
		return &suts.StartupError{System: s.Name(),
			Msg: fmt.Sprintf("sqlmini: listen %s: %v", addr, err)}
	}
	srv := sqlmini.NewServer(&sqlmini.Engine{})
	srv.MaxConns = int(st.maxConn)
	srv.Serve(ln)
	s.srv = srv
	s.curAddr = addr
	return nil
}

// Reload implements suts.Reloader: the `pg_ctl reload` idiom, extended
// with a full catalog reset so a warm experiment sees the same fresh
// state a cold restart would. A configuration error is rejected with
// Start's exact wording and the previous configuration keeps serving; an
// address change binds the new socket before releasing the old one.
func (s *Server) Reload(files suts.Files) error {
	st, addr, err := s.check(files)
	if err != nil {
		return err
	}
	return s.applyReload(st, addr)
}

// ReloadDirty implements suts.DirtyReloader: a clean postgresql.conf
// carries the campaign baseline's bytes, so the memoized baseline parse
// is applied without re-parsing. Observationally identical to Reload.
func (s *Server) ReloadDirty(files suts.Files, dirty []string) error {
	data, ok := files[ConfigFile]
	if ok && !slices.Contains(dirty, ConfigFile) {
		if cc, hit := s.baseMemo.Get(data); hit {
			return s.applyReload(cc.st, cc.addr)
		}
		st, addr, err := s.check(files)
		if err != nil {
			return err
		}
		s.baseMemo.Put(data, checkedConfig{st: st, addr: addr})
		return s.applyReload(st, addr)
	}
	return s.Reload(files)
}

// applyReload drives the running server to a checked configuration.
func (s *Server) applyReload(st settings, addr string) error {
	if s.srv != nil && addr == s.curAddr {
		s.srv.SetEngine(&sqlmini.Engine{})
		s.srv.SetMaxConns(int(st.maxConn))
		s.settings = st
		return nil
	}
	ln, err := s.transport().Listen(addr)
	if err != nil {
		return &suts.StartupError{System: s.Name(),
			Msg: fmt.Sprintf("sqlmini: listen %s: %v", addr, err)}
	}
	old := s.srv
	srv := sqlmini.NewServer(&sqlmini.Engine{})
	srv.MaxConns = int(st.maxConn)
	srv.Serve(ln)
	s.srv = srv
	s.curAddr = addr
	s.settings = st
	if old != nil {
		_ = old.Close()
	}
	return nil
}

// Validate implements suts.Validator: the `postgres -C` / config-check
// idiom — parse and address resolution only, nothing bound.
func (s *Server) Validate(files suts.Files) error {
	_, _, err := s.check(files)
	return err
}

// Stop implements suts.System.
func (s *Server) Stop() error {
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	s.srv = nil
	s.curAddr = ""
	return err
}

// Health implements suts.HealthChecker.
func (s *Server) Health() error {
	if s.srv == nil {
		return fmt.Errorf("postgres-sim: not listening")
	}
	return nil
}

// SetTransport implements suts.TransportSetter. Must be called before
// Start; it moves both the listener and the functional tests' dials.
func (s *Server) SetTransport(t suts.Transport) { s.tr = t }

// transport returns the configured transport, defaulting to TCP.
func (s *Server) transport() suts.Transport {
	if s.tr == nil {
		return suts.TCPTransport{}
	}
	return s.tr
}

// Addr implements suts.Addressable.
func (s *Server) Addr() string {
	if s.srv == nil {
		return ""
	}
	return s.srv.Addr()
}

// parseConfig applies 8.2's configuration-file semantics.
func parseConfig(conf string) (settings, error) {
	st := settings{
		ints:    make(map[string]int64),
		reals:   make(map[string]float64),
		bools:   make(map[string]bool),
		strs:    make(map[string]string),
		enums:   make(map[string]string),
		port:    5432,
		maxConn: 100,
		listen:  "localhost",
	}
	for lineno, line := range strings.Split(conf, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		name, rawVal, err := splitAssignment(t, lineno+1)
		if err != nil {
			return st, err
		}
		def := lookupGUC(name)
		if def == nil {
			return st, fmt.Errorf("unrecognized configuration parameter \"%s\"", name)
		}
		val, err := unquoteValue(rawVal, lineno+1)
		if err != nil {
			return st, err
		}
		if err := applyGUC(&st, def, val); err != nil {
			return st, err
		}
	}
	// Cross-directive constraint (paper §5.2): max_fsm_pages must be at
	// least 16 × max_fsm_relations.
	fsmPages, hasPages := st.ints["max_fsm_pages"]
	fsmRel := int64(1000) // default max_fsm_relations
	if v, ok := st.ints["max_fsm_relations"]; ok {
		fsmRel = v
	}
	if hasPages && fsmPages < 16*fsmRel {
		return st, fmt.Errorf(
			"max_fsm_pages must exceed max_fsm_relations * 16 (%d < %d)",
			fsmPages, 16*fsmRel)
	}
	return st, nil
}

// splitAssignment splits "name = value" or "name value"; the '=' is
// optional, a directive with neither '=' nor value is a syntax error.
func splitAssignment(line string, lineno int) (string, string, error) {
	if eq := strings.IndexByte(line, '='); eq >= 0 {
		name := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		if name == "" || strings.ContainsAny(name, " \t") {
			return "", "", fmt.Errorf("syntax error in configuration file at line %d", lineno)
		}
		return name, val, nil
	}
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return "", "", fmt.Errorf("syntax error in configuration file at line %d", lineno)
	}
	return line[:i], strings.TrimSpace(line[i:]), nil
}

// unquoteValue strips trailing comments and paired single quotes; an
// unterminated quote is a syntax error (a typo corrupting a quote is
// detected).
func unquoteValue(raw string, lineno int) (string, error) {
	v := raw
	if !strings.HasPrefix(v, "'") {
		// Trailing comment only applies outside quotes here; quoted values
		// had comments handled by the scan below.
		if i := strings.IndexByte(v, '#'); i >= 0 {
			v = strings.TrimSpace(v[:i])
		}
		return v, nil
	}
	// Quoted: find the closing quote ('' escapes).
	for i := 1; i < len(v); i++ {
		if v[i] != '\'' {
			continue
		}
		if i+1 < len(v) && v[i+1] == '\'' {
			i++
			continue
		}
		inner := strings.ReplaceAll(v[1:i], "''", "'")
		rest := strings.TrimSpace(v[i+1:])
		if rest != "" && !strings.HasPrefix(rest, "#") {
			return "", fmt.Errorf("syntax error in configuration file at line %d", lineno)
		}
		return inner, nil
	}
	return "", fmt.Errorf("unterminated quoted string in configuration file at line %d", lineno)
}

func applyGUC(st *settings, def *gucDef, val string) error {
	switch def.kind {
	case kindInt:
		n, err := parseInt(val, def)
		if err != nil {
			return err
		}
		st.ints[def.name] = n
		switch def.name {
		case "port":
			st.port = n
		case "max_connections":
			st.maxConn = n
		}
	case kindReal:
		f, err := parseReal(val, def)
		if err != nil {
			return err
		}
		st.reals[def.name] = f
	case kindBool:
		b, err := parseBool(val, def)
		if err != nil {
			return err
		}
		st.bools[def.name] = b
	case kindEnum:
		v, err := parseEnum(val, def)
		if err != nil {
			return err
		}
		st.enums[def.name] = v
	case kindString:
		st.strs[def.name] = val
		if def.name == "listen_addresses" {
			st.listen = val
		}
	}
	return nil
}

// Tests returns the paper's database diagnosis suite (§5.1) against the
// default port.
func Tests(s *Server) []suts.Test {
	return []suts.Test{{
		Name: "db-roundtrip",
		Run: func() error {
			addr := fmt.Sprintf("127.0.0.1:%d", s.DefaultPort())
			conn, err := s.transport().Dial(addr)
			if err != nil {
				return fmt.Errorf("connect: %w", fmt.Errorf("sqlmini: dial %s: %w", addr, err))
			}
			c := sqlmini.NewClient(conn)
			defer func() { _ = c.Close() }()
			for _, stmt := range []string{
				"CREATE DATABASE conferr_test",
				"USE conferr_test",
				"CREATE TABLE t (id, name)",
				"INSERT INTO t VALUES (1, 'alpha')",
			} {
				if _, _, err := c.Exec(stmt); err != nil {
					return fmt.Errorf("%s: %w", stmt, err)
				}
			}
			rows, _, err := c.Exec("SELECT name FROM t WHERE id = 1")
			if err != nil {
				return fmt.Errorf("select: %w", err)
			}
			if len(rows) != 1 || rows[0][0] != "alpha" {
				return fmt.Errorf("unexpected result %v", rows)
			}
			return nil
		},
	}}
}
