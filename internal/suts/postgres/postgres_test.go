package postgres

import (
	"fmt"
	"strings"
	"testing"

	"conferr/internal/suts"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func startWith(t *testing.T, s *Server, conf string) error {
	t.Helper()
	return s.Start(suts.Files{ConfigFile: []byte(conf)})
}

func TestDefaultConfigStartsAndServes(t *testing.T) {
	s := newServer(t)
	if err := s.Start(s.DefaultConfig()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()
	for _, test := range Tests(s) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test %s: %v", test.Name, err)
		}
	}
}

func TestFullConfigStarts(t *testing.T) {
	s := newServer(t)
	if err := s.Start(s.FullConfig()); err != nil {
		t.Fatalf("FullConfig does not start: %v", err)
	}
	defer s.Stop()
	for _, test := range Tests(s) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test %s: %v", test.Name, err)
		}
	}
}

func TestUnrecognizedParameterFatal(t *testing.T) {
	s := newServer(t)
	err := startWith(t, s, "prot = 5432\n")
	if err == nil {
		s.Stop()
		t.Fatal("unknown parameter accepted")
	}
	if !suts.IsStartupError(err) || !strings.Contains(err.Error(), "unrecognized configuration parameter") {
		t.Errorf("err = %v", err)
	}
}

func TestCaseInsensitiveNames(t *testing.T) {
	// Table 2: Postgres accepts mixed-case directive names.
	s := newServer(t)
	if err := startWith(t, s, "MAX_Connections = 50\n"); err != nil {
		t.Fatalf("mixed-case name rejected: %v", err)
	}
	defer s.Stop()
	if s.settings.maxConn != 50 {
		t.Errorf("max_connections = %d", s.settings.maxConn)
	}
}

func TestTruncatedNamesRejected(t *testing.T) {
	// Table 2: Postgres does not accept truncated directive names.
	s := newServer(t)
	if err := startWith(t, s, "max_conn = 50\n"); err == nil {
		s.Stop()
		t.Fatal("truncated name accepted")
	}
}

func TestFindingCrossDirectiveConstraint(t *testing.T) {
	// Paper §5.2: replacing 153600 with 15600 in max_fsm_pages causes an
	// immediate shutdown explaining the 16 × max_fsm_relations rule.
	s := newServer(t)
	err := startWith(t, s, "max_fsm_pages = 15600\n")
	if err == nil {
		s.Stop()
		t.Fatal("constraint violation accepted")
	}
	if !strings.Contains(err.Error(), "max_fsm_relations * 16") {
		t.Errorf("constraint message missing: %v", err)
	}
	// Satisfying the constraint by lowering max_fsm_relations is fine.
	if err := startWith(t, s, "max_fsm_pages = 15600\nmax_fsm_relations = 100\n"); err != nil {
		t.Fatalf("satisfiable constraint rejected: %v", err)
	}
	s.Stop()
}

func TestOutOfRangeIsErrorNotClamp(t *testing.T) {
	s := newServer(t)
	err := startWith(t, s, "max_connections = 0\n")
	if err == nil {
		s.Stop()
		t.Fatal("out-of-range accepted")
	}
	if !strings.Contains(err.Error(), "outside the valid range") {
		t.Errorf("err = %v", err)
	}
}

func TestStrictNumericParsing(t *testing.T) {
	s := newServer(t)
	for _, bad := range []string{
		"max_connections = 1o0\n",   // letter inside digits
		"max_connections = 100x\n",  // junk suffix
		"max_connections = x\n",     // no digits
		"shared_buffers = 32MB0\n",  // junk after unit
		"shared_buffers = 32mb\n",   // wrong unit case (8.2 is exact)
		"shared_buffers = 32ZB\n",   // unknown unit
		"max_connections = 100MB\n", // unit on a unit-less parameter
	} {
		if err := startWith(t, s, bad); err == nil {
			s.Stop()
			t.Errorf("accepted %q", bad)
		}
	}
	for _, good := range []string{
		"shared_buffers = 32MB\n",
		"shared_buffers = 1GB\n",
		"shared_buffers = 4096kB\n",
		"shared_buffers = 4096\n", // bare number of pages
		"bgwriter_delay = 200ms\n",
		"checkpoint_timeout = 5min\n",
		"deadlock_timeout = 1s\n",
	} {
		if err := startWith(t, s, good); err != nil {
			t.Errorf("rejected %q: %v", good, err)
			continue
		}
		s.Stop()
	}
}

func TestEnumValidation(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, "log_destination = 'stderrr'\n"); err == nil {
		s.Stop()
		t.Fatal("bad enum accepted")
	}
	if err := startWith(t, s, "log_min_messages = 'warning'\n"); err != nil {
		t.Fatalf("valid enum rejected: %v", err)
	}
	s.Stop()
	// List-valued enum: every element validated.
	if err := startWith(t, s, "datestyle = 'iso, mdy'\n"); err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}
	s.Stop()
	if err := startWith(t, s, "datestyle = 'iso, mdx'\n"); err == nil {
		s.Stop()
		t.Fatal("bad list element accepted")
	}
}

func TestBoolValidation(t *testing.T) {
	s := newServer(t)
	for _, good := range []string{"on", "off", "true", "fal", "ye", "n", "1", "0", "TRUE"} {
		if err := startWith(t, s, "fsync = "+good+"\n"); err != nil {
			t.Errorf("bool %q rejected: %v", good, err)
			continue
		}
		s.Stop()
	}
	for _, bad := range []string{"onn", "o", "2", "tru3"} {
		if err := startWith(t, s, "fsync = "+bad+"\n"); err == nil {
			s.Stop()
			t.Errorf("bool %q accepted", bad)
		}
	}
}

func TestRealValidation(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, "random_page_cost = 4.0\n"); err != nil {
		t.Fatalf("valid real rejected: %v", err)
	}
	s.Stop()
	if err := startWith(t, s, "random_page_cost = 4.o\n"); err == nil {
		s.Stop()
		t.Fatal("bad real accepted")
	}
}

func TestQuoteHandling(t *testing.T) {
	s := newServer(t)
	// Unterminated quote (a typo ate the closing quote) is a syntax error.
	if err := startWith(t, s, "lc_messages = 'C\n"); err == nil {
		s.Stop()
		t.Fatal("unterminated quote accepted")
	}
	// Escaped quote inside value.
	if err := startWith(t, s, "log_line_prefix = 'a''b'\n"); err != nil {
		t.Fatalf("escaped quote rejected: %v", err)
	}
	defer s.Stop()
	if got := s.settings.strs["log_line_prefix"]; got != "a'b" {
		t.Errorf("unquoted value = %q", got)
	}
}

func TestTrailingCommentStripped(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, "max_connections = 42 # comment\n"); err != nil {
		t.Fatalf("trailing comment rejected: %v", err)
	}
	defer s.Stop()
	if s.settings.maxConn != 42 {
		t.Errorf("maxConn = %d", s.settings.maxConn)
	}
}

func TestListenAddressTypoFailsStartup(t *testing.T) {
	s := newServer(t)
	err := startWith(t, s, "listen_addresses = 'localhpst'\n")
	if err == nil {
		s.Stop()
		t.Fatal("bad listen address accepted")
	}
	if !strings.Contains(err.Error(), "could not translate host name") {
		t.Errorf("err = %v", err)
	}
}

func TestOptionalEqualsSign(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, "max_connections 77\n"); err != nil {
		t.Fatalf("'=' -less assignment rejected: %v", err)
	}
	defer s.Stop()
	if s.settings.maxConn != 77 {
		t.Errorf("maxConn = %d", s.settings.maxConn)
	}
}

func TestSyntaxErrors(t *testing.T) {
	s := newServer(t)
	for _, bad := range []string{"max_connections\n", "= 5\n", "a b = 5\n"} {
		if err := startWith(t, s, bad); err == nil {
			s.Stop()
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestDeletionOfDirectiveIgnored(t *testing.T) {
	// Deleting a directive falls back to defaults: the system starts.
	s := newServer(t)
	conf := strings.Replace(string(s.DefaultConfig()[ConfigFile]), "max_connections = 100\n", "", 1)
	if err := startWith(t, s, conf); err != nil {
		t.Fatalf("deletion rejected: %v", err)
	}
	defer s.Stop()
	if s.settings.maxConn != 100 {
		t.Errorf("default maxConn = %d", s.settings.maxConn)
	}
}

func TestPortTypoCaughtByFunctionalTest(t *testing.T) {
	s := newServer(t)
	other := newServer(t) // just to allocate a second free port
	conf := strings.Replace(string(s.DefaultConfig()[ConfigFile]),
		fmt.Sprintf("port = %d", s.DefaultPort()),
		fmt.Sprintf("port = %d", other.DefaultPort()), 1)
	if err := startWith(t, s, conf); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()
	failed := false
	for _, test := range Tests(s) {
		if test.Run() != nil {
			failed = true
		}
	}
	if !failed {
		t.Error("functional test should fail on mutated port")
	}
}

func TestRestartable(t *testing.T) {
	s := newServer(t)
	for i := 0; i < 3; i++ {
		if err := s.Start(s.DefaultConfig()); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if err := s.Stop(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stop(); err != nil {
		t.Errorf("idle Stop: %v", err)
	}
	if s.Addr() != "" {
		t.Error("Addr after stop should be empty")
	}
}

func TestMissingConfig(t *testing.T) {
	s := newServer(t)
	if err := s.Start(suts.Files{}); err == nil {
		s.Stop()
		t.Fatal("missing config accepted")
	}
}
