// Package postgres simulates the PostgreSQL 8.2 database server for
// ConfErr campaigns. The simulator is a real TCP server (speaking the
// sqlmini wire protocol) whose configuration handling reproduces the GUC
// behaviours the paper's findings rest on (§5.2):
//
//   - unrecognized parameters abort startup (FATAL), names are
//     case-insensitive, truncated names are not accepted (Table 2);
//   - numeric values are parsed strictly: optional exact-case unit
//     (kB/MB/GB or ms/s/min/h/d) and nothing else may follow the digits;
//   - out-of-range values are errors, never clamped;
//   - cross-directive constraints are enforced: max_fsm_pages must be at
//     least 16 × max_fsm_relations, with an explanatory message;
//   - enumerated parameters validate their values; plain strings are
//     accepted freeform.
package postgres

import (
	"fmt"
	"strconv"
	"strings"
)

// gucKind is the value type of a configuration parameter.
type gucKind int

const (
	kindBool gucKind = iota + 1
	kindInt
	kindReal
	kindString
	kindEnum
)

// gucUnit says which unit family an integer parameter accepts.
type gucUnit int

const (
	unitNone gucUnit = iota + 1
	unitMemory
	unitTime
)

// gucDef describes one configuration parameter.
type gucDef struct {
	name string
	kind gucKind
	unit gucUnit
	// min/max bound integer parameters; violations are fatal.
	min, max int64
	// enum lists allowed values for kindEnum (matched case-insensitively).
	enum []string
	// list permits comma-separated combinations of enum values
	// (e.g. datestyle = 'iso, mdy').
	list bool
	// def is the default raw value (informational).
	def string
}

// memUnits are the PostgreSQL 8.2 memory units, matched case-sensitively
// (guc.c: "kB", "MB", "GB"); values are in kB like the GUC machinery.
var memUnits = []struct {
	suffix string
	factor int64
}{
	{"kB", 1},
	{"MB", 1024},
	{"GB", 1024 * 1024},
}

// timeUnits are the 8.2 time units; values in milliseconds.
var timeUnits = []struct {
	suffix string
	factor int64
}{
	{"ms", 1},
	{"s", 1000},
	{"min", 60 * 1000},
	{"h", 3600 * 1000},
	{"d", 86400 * 1000},
}

// gucs is the parameter registry: the subset of PostgreSQL 8.2 parameters
// the simulator models. Integer memory parameters are expressed in kB,
// time parameters in ms.
var gucs = []gucDef{
	{name: "listen_addresses", kind: kindString, def: "localhost"},
	{name: "port", kind: kindInt, unit: unitNone, min: 1, max: 65535, def: "5432"},
	{name: "max_connections", kind: kindInt, unit: unitNone, min: 1, max: 1 << 23, def: "100"},
	{name: "shared_buffers", kind: kindInt, unit: unitMemory, min: 128, max: 1 << 40, def: "32MB"},
	{name: "temp_buffers", kind: kindInt, unit: unitMemory, min: 100, max: 1 << 40, def: "8MB"},
	{name: "work_mem", kind: kindInt, unit: unitMemory, min: 64, max: 1 << 40, def: "1MB"},
	{name: "maintenance_work_mem", kind: kindInt, unit: unitMemory, min: 1024, max: 1 << 40, def: "16MB"},
	{name: "max_fsm_pages", kind: kindInt, unit: unitNone, min: 1000, max: 1 << 40, def: "153600"},
	{name: "max_fsm_relations", kind: kindInt, unit: unitNone, min: 100, max: 1 << 30, def: "1000"},
	{name: "max_stack_depth", kind: kindInt, unit: unitMemory, min: 100, max: 1 << 30, def: "2MB"},
	{name: "vacuum_cost_delay", kind: kindInt, unit: unitTime, min: 0, max: 1000, def: "0"},
	{name: "bgwriter_delay", kind: kindInt, unit: unitTime, min: 10, max: 10000, def: "200ms"},
	{name: "wal_buffers", kind: kindInt, unit: unitMemory, min: 32, max: 1 << 30, def: "64kB"},
	{name: "checkpoint_segments", kind: kindInt, unit: unitNone, min: 1, max: 1 << 20, def: "3"},
	{name: "checkpoint_timeout", kind: kindInt, unit: unitTime, min: 30000, max: 3600000, def: "5min"},
	{name: "effective_cache_size", kind: kindInt, unit: unitMemory, min: 8, max: 1 << 40, def: "128MB"},
	{name: "random_page_cost", kind: kindReal, def: "4.0"},
	{name: "cpu_tuple_cost", kind: kindReal, def: "0.01"},
	{name: "geqo_selection_bias", kind: kindReal, def: "2.0"},
	{name: "deadlock_timeout", kind: kindInt, unit: unitTime, min: 1, max: 3600000, def: "1s"},
	{name: "statement_timeout", kind: kindInt, unit: unitTime, min: 0, max: 1 << 31, def: "0"},
	{name: "authentication_timeout", kind: kindInt, unit: unitTime, min: 1000, max: 600000, def: "1min"},
	{name: "log_destination", kind: kindEnum, list: true, def: "stderr",
		enum: []string{"stderr", "syslog", "csvlog", "eventlog"}},
	{name: "log_min_messages", kind: kindEnum, def: "notice",
		enum: []string{"debug5", "debug4", "debug3", "debug2", "debug1", "info", "notice", "warning", "error", "log", "fatal", "panic"}},
	{name: "client_min_messages", kind: kindEnum, def: "notice",
		enum: []string{"debug5", "debug4", "debug3", "debug2", "debug1", "log", "notice", "warning", "error"}},
	{name: "wal_sync_method", kind: kindEnum, def: "fsync",
		enum: []string{"fsync", "fdatasync", "open_sync", "open_datasync"}},
	{name: "default_transaction_isolation", kind: kindEnum, def: "read committed",
		enum: []string{"serializable", "repeatable read", "read committed", "read uncommitted"}},
	{name: "datestyle", kind: kindEnum, list: true, def: "iso, mdy",
		enum: []string{"iso", "postgres", "sql", "german", "dmy", "mdy", "ymd", "euro", "us"}},
	{name: "lc_messages", kind: kindEnum, def: "C",
		enum: []string{"C", "POSIX", "en_US.UTF-8"}},
	{name: "search_path", kind: kindString, def: "\"$user\",public"},
	{name: "log_directory", kind: kindString, def: "pg_log"},
	{name: "log_filename", kind: kindString, def: "postgresql-%Y-%m-%d.log"},
	{name: "log_line_prefix", kind: kindString, def: ""},
	{name: "external_pid_file", kind: kindString, def: ""},
	{name: "unix_socket_directory", kind: kindString, def: "/tmp"},
	{name: "dynamic_library_path", kind: kindString, def: "$libdir"},
	{name: "fsync", kind: kindBool, def: "on"},
	{name: "full_page_writes", kind: kindBool, def: "on"},
	{name: "enable_seqscan", kind: kindBool, def: "on"},
	{name: "autovacuum", kind: kindBool, def: "on"},
}

// lookupGUC resolves a parameter name case-insensitively; truncated names
// are not accepted.
func lookupGUC(name string) *gucDef {
	for i := range gucs {
		if strings.EqualFold(gucs[i].name, name) {
			return &gucs[i]
		}
	}
	return nil
}

// parseInt applies 8.2's strict integer parsing: optional sign, digits,
// optional exact unit from the parameter's unit family, nothing else.
func parseInt(raw string, def *gucDef) (int64, error) {
	s := strings.TrimSpace(raw)
	if s == "" {
		return 0, fmt.Errorf("invalid value for parameter \"%s\": \"\"", def.name)
	}
	neg := false
	i := 0
	if s[0] == '-' || s[0] == '+' {
		neg = s[0] == '-'
		i++
	}
	start := i
	var n int64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		n = n*10 + int64(s[i]-'0')
		i++
	}
	if i == start {
		return 0, fmt.Errorf("invalid value for parameter \"%s\": \"%s\"", def.name, raw)
	}
	if neg {
		n = -n
	}
	rest := strings.TrimSpace(s[i:])
	if rest != "" {
		factor, ok := unitFactor(rest, def.unit)
		if !ok {
			return 0, fmt.Errorf("invalid value for parameter \"%s\": \"%s\"", def.name, raw)
		}
		n *= factor
	}
	if n < def.min || n > def.max {
		return 0, fmt.Errorf("%d is outside the valid range for parameter \"%s\" (%d .. %d)",
			n, def.name, def.min, def.max)
	}
	return n, nil
}

// unitFactor matches a unit suffix case-sensitively within the parameter's
// unit family (guc.c 8.2 behaviour: "32mb" is invalid).
func unitFactor(suffix string, unit gucUnit) (int64, bool) {
	switch unit {
	case unitMemory:
		for _, u := range memUnits {
			if suffix == u.suffix {
				return u.factor, true
			}
		}
	case unitTime:
		for _, u := range timeUnits {
			if suffix == u.suffix {
				return u.factor, true
			}
		}
	}
	return 0, false
}

// parseReal parses a floating-point parameter strictly: the whole value
// must be a number.
func parseReal(raw string, def *gucDef) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
	if err != nil {
		return 0, fmt.Errorf("invalid value for parameter \"%s\": \"%s\"", def.name, raw)
	}
	return f, nil
}

// parseBool accepts the 8.2 spellings: unique prefixes of true/false/
// yes/no, and exact on/off/1/0 (case-insensitive).
func parseBool(raw string, def *gucDef) (bool, error) {
	v := strings.ToLower(strings.TrimSpace(raw))
	switch {
	case v == "":
	case strings.HasPrefix("true", v), strings.HasPrefix("yes", v), v == "on", v == "1":
		return true, nil
	case strings.HasPrefix("false", v), strings.HasPrefix("no", v), v == "off", v == "0":
		return false, nil
	}
	return false, fmt.Errorf("parameter \"%s\" requires a Boolean value", def.name)
}

// parseEnum validates an enumerated value, honouring comma-separated lists
// where the parameter allows them.
func parseEnum(raw string, def *gucDef) (string, error) {
	v := strings.TrimSpace(raw)
	parts := []string{v}
	if def.list {
		parts = strings.Split(v, ",")
	}
	for _, p := range parts {
		p = strings.TrimSpace(p)
		ok := false
		for _, a := range def.enum {
			if strings.EqualFold(a, p) {
				ok = true
				break
			}
		}
		if !ok {
			return "", fmt.Errorf("invalid value for parameter \"%s\": \"%s\"", def.name, raw)
		}
	}
	return v, nil
}
