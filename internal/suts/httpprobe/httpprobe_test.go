package httpprobe

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"conferr/internal/memnet"
)

func echoHandler(dst []byte, path, host []byte) ([]byte, int) {
	dst = append(dst, "path="...)
	dst = append(dst, path...)
	dst = append(dst, " host="...)
	dst = append(dst, host...)
	return dst, 200
}

func startServer(t *testing.T, n *memnet.Network, addr string, h Handler) (*Server, net.Listener) {
	t.Helper()
	ln, err := n.Listen(addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := NewServer("probe-sim/1.0", h)
	go s.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		s.Close()
	})
	return s, ln
}

func TestClientServerRoundTrip(t *testing.T) {
	n := memnet.New()
	startServer(t, n, "127.0.0.1:80", echoHandler)
	c := NewClient(n.Dial, 2*time.Second)
	defer c.Close()

	p := NewProbe("127.0.0.1:80", "/index.html", "blog.example.com")
	for i := 0; i < 3; i++ {
		status, body, err := c.Do(p)
		if err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
		if status != 200 {
			t.Fatalf("Do %d: status %d", i, status)
		}
		if got, want := string(body), "path=/index.html host=blog.example.com"; got != want {
			t.Fatalf("Do %d: body %q, want %q", i, got, want)
		}
	}
}

func TestDefaultHostIsAddr(t *testing.T) {
	n := memnet.New()
	startServer(t, n, "127.0.0.1:80", echoHandler)
	c := NewClient(n.Dial, 2*time.Second)
	defer c.Close()

	_, body, err := c.Do(NewProbe("127.0.0.1:80", "/", ""))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(body), "path=/ host=127.0.0.1:80"; got != want {
		t.Fatalf("body %q, want %q", got, want)
	}
}

func TestRefusedWording(t *testing.T) {
	n := memnet.New()
	c := NewClient(n.Dial, time.Second)
	defer c.Close()

	_, _, err := c.Do(NewProbe("127.0.0.1:81", "/", ""))
	want := `Get "http://127.0.0.1:81/": dial tcp 127.0.0.1:81: connect: connection refused`
	if err == nil || err.Error() != want {
		t.Fatalf("err %v, want %q", err, want)
	}
}

func TestTimeoutWording(t *testing.T) {
	n := memnet.New()
	ln, err := n.Listen("127.0.0.1:80")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Accept and read, but never answer.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()

	c := NewClient(n.Dial, 30*time.Millisecond)
	defer c.Close()
	p := NewProbe("127.0.0.1:80", "/", "")
	_, _, err = c.Do(p)
	want := `Get "http://127.0.0.1:80/": context deadline exceeded (Client.Timeout exceeded while awaiting headers)`
	if err == nil || err.Error() != want {
		t.Fatalf("err %v, want %q", err, want)
	}
}

// TestStaleConnectionRetry rebinds the listener behind the client's
// warm connection — the single idempotent retry must recover, exactly
// like net/http's reused-connection retry.
func TestStaleConnectionRetry(t *testing.T) {
	n := memnet.New()
	ln, err := n.Listen("127.0.0.1:80")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer("probe-sim/1.0", echoHandler)
	go s.Serve(ln)

	c := NewClient(n.Dial, 2*time.Second)
	defer c.Close()
	p := NewProbe("127.0.0.1:80", "/", "")
	if _, _, err := c.Do(p); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	ln.Close()
	s.Close()
	ln2, err := n.Listen("127.0.0.1:80")
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewServer("probe-sim/1.0", echoHandler)
	go s2.Serve(ln2)
	defer func() {
		ln2.Close()
		s2.Close()
	}()

	status, _, err := c.Do(p)
	if err != nil || status != 200 {
		t.Fatalf("retry after rebind: status %d err %v", status, err)
	}
}

// TestHandlerSwap is the warm-reload shape: SetHandler retargets an
// open keep-alive connection between requests.
func TestHandlerSwap(t *testing.T) {
	n := memnet.New()
	s, _ := startServer(t, n, "127.0.0.1:80", NotFound)
	c := NewClient(n.Dial, 2*time.Second)
	defer c.Close()

	p := NewProbe("127.0.0.1:80", "/x", "")
	status, body, err := c.Do(p)
	if err != nil || status != 404 || string(body) != "404 page not found\n" {
		t.Fatalf("before swap: status %d body %q err %v", status, body, err)
	}
	s.SetHandler(echoHandler)
	status, body, err = c.Do(p)
	if err != nil || status != 200 || !strings.HasPrefix(string(body), "path=/x") {
		t.Fatalf("after swap: status %d body %q err %v", status, body, err)
	}
}

// TestNetHTTPClientInterop drives the fast server with the stock
// net/http client — the reference probe path does exactly this.
func TestNetHTTPClientInterop(t *testing.T) {
	n := memnet.New()
	startServer(t, n, "127.0.0.1:80", echoHandler)

	client := &http.Client{
		Transport: &http.Transport{
			DialContext: func(_ context.Context, _, addr string) (net.Conn, error) {
				return n.Dial(addr)
			},
		},
		Timeout: 2 * time.Second,
	}
	for i := 0; i < 2; i++ {
		resp, err := client.Get("http://127.0.0.1:80/a")
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got, want := string(body), "path=/a host=127.0.0.1:80"; got != want {
			t.Fatalf("body %q, want %q", got, want)
		}
		if got := resp.Header.Get("Server"); got != "probe-sim/1.0" {
			t.Fatalf("Server header %q", got)
		}
	}
}

// TestNetHTTPServerInterop points the fast client at a stock net/http
// server to check the response parser against real-world framing.
func TestNetHTTPServerInterop(t *testing.T) {
	n := memnet.New()
	ln, err := n.Listen("127.0.0.1:80")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hello %s", r.URL.Path)
	})}
	go srv.Serve(ln)
	defer srv.Close()

	c := NewClient(n.Dial, 2*time.Second)
	defer c.Close()
	status, body, err := c.Do(NewProbe("127.0.0.1:80", "/y", ""))
	if err != nil || status != 200 || string(body) != "hello /y" {
		t.Fatalf("status %d body %q err %v", status, body, err)
	}
}

// TestProbeSteadyStateAllocs is the CI guard for the tentpole's "zero
// allocs steady-state" claim. It covers the whole fast path — client
// round trip, memnet pipes (deadline timer reuse included), and the
// server's request handling, since AllocsPerRun counts every
// goroutine's mallocs.
func TestProbeSteadyStateAllocs(t *testing.T) {
	n := memnet.New()
	startServer(t, n, "127.0.0.1:80", echoHandler)
	c := NewClient(n.Dial, 2*time.Second)
	defer c.Close()
	p := NewProbe("127.0.0.1:80", "/index.html", "blog.example.com")

	// Warm: dial once, grow every reused buffer to steady state.
	for i := 0; i < 8; i++ {
		if _, _, err := c.Do(p); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, _, err := c.Do(p); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state probe allocates: %.2f allocs/op, want 0", avg)
	}
}
