// Package httpprobe is a minimal HTTP/1.x client and server for the
// functional-test fast path of the simulated web servers.
//
// BENCH_6's profile put the net/http probe plumbing — URL parsing,
// header maps, textproto, a reader and a writer goroutine per
// connection — at ~26% of a reload+memnet experiment, all spent
// exchanging one small, fixed GET for one small, fixed response. This
// package replaces both ends with the cheapest correct thing: the
// client prebuilds the request bytes once per probe and keeps one
// connection per address warm across experiments; the server parses
// only the request line and the Host header and answers from reused
// buffers. Steady state (warm connection, successful probe) allocates
// nothing on either side — TestProbeSteadyStateAllocs pins that.
//
// Fidelity is the constraint, not a nice-to-have: resilience profiles
// record probe error text verbatim, so the client words its failures
// exactly as net/http would ("Get \"url\": dial tcp ...: connect:
// connection refused", "status 404" comes from the caller) and the
// server produces byte-identical bodies via the simulators' shared
// renderers. The contract tests in the facade package hold the fast and
// net/http reference paths to the same outcomes and wording.
//
// Scope: HTTP/1.1 keep-alive, Content-Length framing (every simulated
// response carries one), no chunked encoding, no request bodies —
// exactly what the probes exchange.
package httpprobe

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

var (
	crlf     = []byte("\r\n")
	crlfcrlf = []byte("\r\n\r\n")
)

// maxHeaderBytes bounds request and response header accumulation; the
// probes' traffic is a few hundred bytes.
const maxHeaderBytes = 64 << 10

// Probe is one prebuilt GET request: the dial address, the request
// bytes sent verbatim on every run, and the URL string used only for
// error wording.
type Probe struct {
	// Addr is the "host:port" dial address.
	Addr string
	// URL is the request URL, quoted into errors the way net/http's
	// url.Error would.
	URL string

	req []byte
}

// NewProbe prebuilds a GET probe for path on addr. A non-empty host
// overrides the Host header (virtual-host probes); the URL always names
// addr, matching how the net/http path built its requests.
func NewProbe(addr, path, host string) *Probe {
	if host == "" {
		host = addr
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "GET %s HTTP/1.1\r\nHost: %s\r\n\r\n", path, host)
	return &Probe{
		Addr: addr,
		URL:  "http://" + addr + path,
		req:  b.Bytes(),
	}
}

// Client is a connection-reusing probe client. It keeps at most one
// connection (to the last probed address) warm across calls, so a warm
// reload lifecycle pays the dial exactly once per retained listener. A
// Client is used by one campaign worker at a time and is not safe for
// concurrent use.
type Client struct {
	dial    func(addr string) (net.Conn, error)
	timeout time.Duration

	conn     net.Conn
	connAddr string

	rbuf []byte // header accumulation, reused
	body []byte // response body, reused; valid until the next Do
}

// NewClient returns a client dialing through the given function (a
// suts.Transport dial, read per call so the transport can be swapped
// before the first probe). timeout bounds each response wait, like
// http.Client.Timeout; zero means no deadline.
func NewClient(dial func(addr string) (net.Conn, error), timeout time.Duration) *Client {
	return &Client{dial: dial, timeout: timeout}
}

// Do sends the probe and returns the response status and body. The body
// slice is client scratch, valid only until the next Do. Errors carry
// net/http's client wording so recorded probe failures are
// byte-identical to the reference path's.
func (c *Client) Do(p *Probe) (int, []byte, error) {
	if c.conn != nil && c.connAddr != p.Addr {
		c.closeConn()
	}
	reused := c.conn != nil
	if c.conn == nil {
		if err := c.dialTo(p); err != nil {
			return 0, nil, err
		}
	}
	status, body, err := c.roundTrip(p)
	if err != nil && reused {
		// The warm connection went stale (the SUT restarted between
		// experiments, or an idle keep-alive was dropped). GET is
		// idempotent, so retry once on a fresh connection — the same
		// recovery net/http applies to reused connections.
		c.closeConn()
		if derr := c.dialTo(p); derr != nil {
			return 0, nil, derr
		}
		status, body, err = c.roundTrip(p)
	}
	if err != nil {
		c.closeConn()
		return 0, nil, c.wrapErr(p, err)
	}
	return status, body, nil
}

// Close hangs up the warm connection, if any.
func (c *Client) Close() { c.closeConn() }

func (c *Client) closeConn() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.connAddr = ""
	}
}

// dialTo connects to the probe's address; failures are wrapped with the
// url.Error wording net/http's Get would produce for the same dial
// error.
func (c *Client) dialTo(p *Probe) error {
	conn, err := c.dial(p.Addr)
	if err != nil {
		return fmt.Errorf("Get %q: %w", p.URL, err)
	}
	c.conn = conn
	c.connAddr = p.Addr
	return nil
}

// wrapErr words a round-trip failure the way net/http's client would.
func (c *Client) wrapErr(p *Probe, err error) error {
	var ne net.Error
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		return fmt.Errorf("Get %q: context deadline exceeded (Client.Timeout exceeded while awaiting headers)", p.URL)
	}
	return fmt.Errorf("Get %q: %w", p.URL, err)
}

// roundTrip writes the probe's prebuilt request and reads one response.
func (c *Client) roundTrip(p *Probe) (int, []byte, error) {
	if c.timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return 0, nil, err
		}
	}
	if _, err := c.conn.Write(p.req); err != nil {
		return 0, nil, err
	}
	return c.readResponse()
}

// readResponse parses one HTTP/1.x response: status line, the two
// headers the framing depends on (Content-Length, Connection), then the
// body into the reused buffer.
func (c *Client) readResponse() (int, []byte, error) {
	if c.rbuf == nil {
		c.rbuf = make([]byte, 4096)
	}
	buf := c.rbuf
	n, he := 0, -1
	for {
		if i := bytes.Index(buf[:n], crlfcrlf); i >= 0 {
			he = i + 4
			break
		}
		if n == len(buf) {
			if len(buf) >= maxHeaderBytes {
				return 0, nil, errors.New("net/http: HTTP/1.x transport connection broken: response headers exceeded limit")
			}
			nb := make([]byte, len(buf)*2)
			copy(nb, buf[:n])
			buf, c.rbuf = nb, nb
		}
		m, err := c.conn.Read(buf[n:])
		n += m
		if err != nil {
			if err == io.EOF && n > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
	}

	status, rest, ok := parseStatusLine(buf[:he])
	if !ok {
		line := buf[:he]
		if i := bytes.Index(line, crlf); i >= 0 {
			line = line[:i]
		}
		return 0, nil, fmt.Errorf("net/http: HTTP/1.x transport connection broken: malformed HTTP response %q", line)
	}
	cl := -1
	connClose := false
	for len(rest) > 0 {
		line := rest
		if i := bytes.Index(rest, crlf); i >= 0 {
			line, rest = rest[:i], rest[i+2:]
		} else {
			rest = nil
		}
		if len(line) == 0 {
			continue
		}
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		name, val := line[:colon], trimSpace(line[colon+1:])
		switch {
		case asciiEqualFold(name, "content-length"):
			v, err := strconv.Atoi(string(val))
			if err != nil || v < 0 {
				return 0, nil, fmt.Errorf("net/http: HTTP/1.x transport connection broken: bad Content-Length %q", val)
			}
			cl = v
		case asciiEqualFold(name, "connection"):
			if asciiEqualFold(val, "close") {
				connClose = true
			}
		}
	}

	if cl >= 0 {
		if cap(c.body) < cl {
			c.body = make([]byte, cl)
		}
		body := c.body[:cl]
		have := copy(body, buf[he:n])
		for have < cl {
			m, err := c.conn.Read(body[have:])
			have += m
			if err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return 0, nil, err
			}
		}
		if connClose {
			c.closeConn()
		}
		return status, body, nil
	}

	// No Content-Length: the body runs to connection close (HTTP/1.0
	// framing); the connection is spent afterwards.
	body := append(c.body[:0], buf[he:n]...)
	for {
		if len(body) == cap(body) {
			body = append(body, 0)[:len(body)]
		}
		m, err := c.conn.Read(body[len(body):cap(body)])
		body = body[:len(body)+m]
		if err == io.EOF {
			break
		}
		if err != nil {
			c.body = body
			return 0, nil, err
		}
	}
	c.body = body
	c.closeConn()
	return status, body, nil
}

// parseStatusLine extracts the status code from "HTTP/1.x NNN reason",
// returning the remaining header bytes.
func parseStatusLine(b []byte) (int, []byte, bool) {
	i := bytes.Index(b, crlf)
	if i < 0 {
		return 0, nil, false
	}
	line, rest := b[:i], b[i+2:]
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 || !bytes.HasPrefix(line, []byte("HTTP/1.")) {
		return 0, nil, false
	}
	line = line[sp+1:]
	if len(line) < 3 {
		return 0, nil, false
	}
	status := 0
	for j := 0; j < 3; j++ {
		c := line[j]
		if c < '0' || c > '9' {
			return 0, nil, false
		}
		status = status*10 + int(c-'0')
	}
	return status, rest, true
}

// trimSpace trims ASCII spaces and tabs (header optional whitespace).
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// asciiEqualFold compares a byte slice against an ASCII string
// case-insensitively without allocating. The protocol elements and
// simulator names it compares are ASCII by construction.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		cb, cs := b[i], s[i]
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if 'A' <= cs && cs <= 'Z' {
			cs += 'a' - 'A'
		}
		if cb != cs {
			return false
		}
	}
	return true
}

// EqualFold is asciiEqualFold exported for the simulators' host
// matching (ASCII-only, allocation-free).
func EqualFold(b []byte, s string) bool { return asciiEqualFold(b, s) }

// HasPrefix reports whether b starts with s without converting either
// side (a non-constant []byte(s) conversion can allocate, which the
// serving path must not).
func HasPrefix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

// Handler answers one request: it appends the response body to dst
// (reused across requests on the same connection) and returns the
// extended slice plus the HTTP status code. path and host alias the
// connection's read buffer and must not be retained.
type Handler func(dst []byte, path, host []byte) ([]byte, int)

// NotFound is a Handler with http.NotFound's body and status, the
// placeholder installed between binding a listener and committing a
// routing table.
func NotFound(dst []byte, _, _ []byte) ([]byte, int) {
	return append(dst, "404 page not found\n"...), 404
}

// Server serves prebound listeners with a swappable Handler: a warm
// reload retargets routing in place (SetHandler) without rebinding
// listeners or dropping keep-alive connections, mirroring what the
// net/http swapHandler plumbing did.
type Server struct {
	name string
	h    atomic.Value // Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server identifying itself as name in the Server
// response header and answering with h (NotFound when nil).
func NewServer(name string, h Handler) *Server {
	s := &Server{name: name}
	if h == nil {
		h = NotFound
	}
	s.h.Store(h)
	return s
}

// SetHandler atomically swaps the routing table; in-flight and
// keep-alive connections use the new handler from their next request.
func (s *Server) SetHandler(h Handler) { s.h.Store(h) }

// Serve accepts connections on ln until it is closed. The listener is
// owned by the caller (bound through the SUT's transport and closed by
// its Stop); run Serve in a goroutine per listener — multiple listeners
// may share one Server.
func (s *Server) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close hangs up every live connection and waits for their goroutines;
// listeners must already be closed by the caller. The server is spent
// afterwards.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// serveConn answers requests on one connection until it closes. The
// read, body and response buffers live for the connection — under the
// pooled lifecycle that is the whole campaign, so the per-request
// serving path allocates nothing.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
		s.wg.Done()
	}()
	buf := make([]byte, 4096)
	var body, resp []byte
	n := 0
	for {
		reqEnd := -1
		for {
			if i := bytes.Index(buf[:n], crlfcrlf); i >= 0 {
				reqEnd = i + 4
				break
			}
			if n == len(buf) {
				if len(buf) >= maxHeaderBytes {
					return
				}
				nb := make([]byte, len(buf)*2)
				copy(nb, buf[:n])
				buf = nb
			}
			m, err := conn.Read(buf[n:])
			n += m
			if err != nil {
				return
			}
		}

		req := buf[:reqEnd]
		lineEnd := bytes.Index(req, crlf)
		sp1 := bytes.IndexByte(req[:lineEnd], ' ')
		if sp1 < 0 {
			return
		}
		sp2 := bytes.IndexByte(req[sp1+1:lineEnd], ' ')
		if sp2 < 0 {
			return
		}
		sp2 += sp1 + 1
		path := req[sp1+1 : sp2]
		keepAlive := bytes.Equal(req[sp2+1:lineEnd], []byte("HTTP/1.1"))

		var host []byte
		connClose := false
		for rest := req[lineEnd+2 : reqEnd-2]; len(rest) > 0; {
			line := rest
			if i := bytes.Index(rest, crlf); i >= 0 {
				line, rest = rest[:i], rest[i+2:]
			} else {
				rest = nil
			}
			colon := bytes.IndexByte(line, ':')
			if colon < 0 {
				continue
			}
			name, val := line[:colon], trimSpace(line[colon+1:])
			switch {
			case asciiEqualFold(name, "host"):
				host = val
			case asciiEqualFold(name, "connection"):
				if asciiEqualFold(val, "close") {
					connClose = true
				}
			}
		}

		h := s.h.Load().(Handler)
		var status int
		body, status = h(body[:0], path, host)

		resp = resp[:0]
		resp = append(resp, "HTTP/1.1 "...)
		resp = appendStatus(resp, status)
		resp = append(resp, crlf...)
		if s.name != "" {
			resp = append(resp, "Server: "...)
			resp = append(resp, s.name...)
			resp = append(resp, crlf...)
		}
		resp = append(resp, "Content-Length: "...)
		resp = strconv.AppendInt(resp, int64(len(body)), 10)
		resp = append(resp, crlf...)
		if !keepAlive || connClose {
			resp = append(resp, "Connection: close\r\n"...)
		}
		resp = append(resp, crlf...)
		resp = append(resp, body...)
		if _, err := conn.Write(resp); err != nil {
			return
		}
		if !keepAlive || connClose {
			return
		}
		n = copy(buf, buf[reqEnd:n])
	}
}

// appendStatus renders "NNN Reason" for the statuses the simulators
// answer with, falling back to the bare code.
func appendStatus(dst []byte, status int) []byte {
	switch status {
	case 200:
		return append(dst, "200 OK"...)
	case 404:
		return append(dst, "404 Not Found"...)
	default:
		dst = strconv.AppendInt(dst, int64(status), 10)
		return append(dst, " "...)
	}
}
