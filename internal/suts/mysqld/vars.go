// Package mysqld simulates the MySQL 5.1 database server for ConfErr
// campaigns. The simulator is a real TCP server (speaking the sqlmini wire
// protocol) whose configuration handling reproduces the documented MySQL
// behaviours the paper's findings rest on (§5.2):
//
//   - unknown server variables abort startup, but option names are
//     case-sensitive and unambiguous prefixes are accepted;
//   - numeric values are prefix-parsed: digits, then one optional
//     multiplier letter (K/M/G); anything after the multiplier is silently
//     ignored ("1M0" is accepted as 1M), while any other junk character is
//     an "unknown suffix" error;
//   - out-of-range values are silently clamped to the nearest bound
//     (key_buffer_size=1 is accepted and raised to the minimum);
//   - directives without a value are accepted and replaced with defaults;
//   - my.cnf is shared with the auxiliary tools: only the [mysqld] group
//     is parsed at startup, so errors in other groups stay latent.
package mysqld

import "strings"

// varKind is the type of a server variable's value.
type varKind int

const (
	kindInt varKind = iota + 1
	kindSize
	kindBool
	kindEnum
	kindString
	kindFlag // valueless boolean option, e.g. skip-external-locking
)

// varDef describes one server variable.
type varDef struct {
	name string
	kind varKind
	// min/max bound numeric values; MySQL clamps silently.
	min, max int64
	// enum lists allowed values for kindEnum.
	enum []string
	// def is the default raw value (informational).
	def string
}

// serverVars is the [mysqld] variable registry: the subset of MySQL 5.1
// system variables the simulator models, covering every type the paper's
// experiments exercise. Lookup is case-sensitive (Table 2: MySQL does not
// accept mixed-case directive names) and accepts unambiguous prefixes
// (Table 2: truncatable names).
var serverVars = []varDef{
	{name: "port", kind: kindInt, min: 0, max: 65535, def: "3306"},
	{name: "bind_address", kind: kindString, def: "127.0.0.1"},
	{name: "socket", kind: kindString, def: "/tmp/mysql.sock"},
	{name: "datadir", kind: kindString, def: "/var/lib/mysql"},
	{name: "key_buffer_size", kind: kindSize, min: 8, max: 1 << 42, def: "16M"},
	{name: "max_allowed_packet", kind: kindSize, min: 1024, max: 1 << 30, def: "1M"},
	{name: "table_open_cache", kind: kindInt, min: 1, max: 524288, def: "64"},
	{name: "sort_buffer_size", kind: kindSize, min: 32 << 10, max: 1 << 42, def: "512K"},
	{name: "net_buffer_length", kind: kindSize, min: 1024, max: 1 << 20, def: "8K"},
	{name: "read_buffer_size", kind: kindSize, min: 8 << 10, max: 1 << 31, def: "256K"},
	{name: "thread_stack", kind: kindSize, min: 128 << 10, max: 1 << 31, def: "192K"},
	{name: "thread_cache_size", kind: kindInt, min: 0, max: 16384, def: "8"},
	{name: "max_connections", kind: kindInt, min: 1, max: 100000, def: "151"},
	// Stored normalized ('-' ⇒ '_'); the option file may use either form.
	{name: "skip_external_locking", kind: kindFlag},
	{name: "sql_mode", kind: kindEnum, def: "ANSI",
		enum: []string{"ANSI", "TRADITIONAL", "STRICT_ALL_TABLES", "STRICT_TRANS_TABLES", "NO_ENGINE_SUBSTITUTION"}},
	{name: "default_storage_engine", kind: kindEnum, def: "MyISAM",
		enum: []string{"MyISAM", "InnoDB", "MEMORY", "CSV", "ARCHIVE"}},
	{name: "log_error", kind: kindString, def: "/var/log/mysql/error.log"},
	{name: "tmpdir", kind: kindString, def: "/tmp"},
	{name: "language", kind: kindString, def: "/usr/share/mysql/english"},
	{name: "low_priority_updates", kind: kindBool, def: "0"},
	{name: "log_bin", kind: kindString, def: "mysql-bin"},
	{name: "server_id", kind: kindInt, min: 0, max: 1 << 32, def: "1"},
	{name: "binlog_format", kind: kindEnum, def: "STATEMENT",
		enum: []string{"STATEMENT", "ROW", "MIXED"}},
	{name: "innodb_buffer_pool_size", kind: kindSize, min: 1 << 20, max: 1 << 42, def: "8M"},
	{name: "innodb_log_file_size", kind: kindSize, min: 1 << 20, max: 1 << 32, def: "5M"},
	{name: "query_cache_size", kind: kindSize, min: 0, max: 1 << 32, def: "0"},
	{name: "back_log", kind: kindInt, min: 1, max: 65535, def: "50"},
	{name: "open_files_limit", kind: kindInt, min: 0, max: 1 << 20, def: "1024"},
	{name: "wait_timeout", kind: kindInt, min: 1, max: 31536000, def: "28800"},
	{name: "tmp_table_size", kind: kindSize, min: 1024, max: 1 << 42, def: "16M"},
	// Unvalidated string variables: names, relative log paths and
	// replication settings that MySQL accepts verbatim. These dominate
	// the full variable listing and are why the §5.5 comparison finds
	// MySQL "poor" for a large share of directives — no typo in them is
	// ever detected.
	{name: "init_connect", kind: kindString, def: "SET NAMES utf8"},
	{name: "report_host", kind: kindString, def: "slave1.example.com"},
	{name: "report_user", kind: kindString, def: "repl"},
	{name: "report_password", kind: kindString, def: "replpass"},
	{name: "relay_log", kind: kindString, def: "relay-bin"},
	{name: "relay_log_index", kind: kindString, def: "relay-bin.index"},
	{name: "log_bin_index", kind: kindString, def: "mysql-bin.index"},
	{name: "slow_query_log_file", kind: kindString, def: "slow.log"},
	{name: "general_log_file", kind: kindString, def: "general.log"},
	{name: "slave_load_tmpdir", kind: kindString, def: "/tmp"},
	{name: "ft_stopword_file", kind: kindString, def: "stopwords.txt"},
	{name: "innodb_data_home_dir", kind: kindString, def: "ibdata"},
	{name: "innodb_log_group_home_dir", kind: kindString, def: "iblogs"},
	{name: "innodb_data_file_path", kind: kindString, def: "ibdata1:10M:autoextend"},
}

// lookupVar resolves a directive name against the registry: exact match
// first, then a unique-prefix match (MySQL's truncated option names). The
// second return distinguishes "not found" (nil, false) from "ambiguous
// prefix" (nil, true).
func lookupVar(name string) (def *varDef, ambiguous bool) {
	for i := range serverVars {
		if serverVars[i].name == name {
			return &serverVars[i], false
		}
	}
	var found *varDef
	for i := range serverVars {
		if strings.HasPrefix(serverVars[i].name, name) {
			if found != nil {
				return nil, true
			}
			found = &serverVars[i]
		}
	}
	return found, false
}
