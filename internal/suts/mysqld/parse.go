package mysqld

import (
	"fmt"
	"strings"
)

// numResult is the outcome of MySQL's numeric option parsing.
type numResult struct {
	// value is the parsed (possibly clamped) value.
	value int64
	// clamped reports whether the value was silently adjusted to a bound.
	clamped bool
	// usedDefault reports whether the raw text yielded no number at all
	// and the default was silently substituted.
	usedDefault bool
	// trailingJunk reports that characters after a valid multiplier were
	// discarded (the "1M0" flaw) — strict mode turns this into an error.
	trailingJunk bool
}

// parseNum reproduces MySQL 5.1's eval_num_suffix + getopt clamping:
//
//   - leading digits (with optional sign) are parsed;
//   - the next character may be a multiplier K/M/G (either case), which is
//     applied — and everything after it is silently ignored ("1M0" ⇒ 1M);
//   - any other non-digit character is an "unknown suffix" error;
//   - a value that starts with a multiplier parses as 0 × multiplier = 0
//     and is then silently clamped to the minimum ("M16" ⇒ min), which the
//     paper describes as "silently ignored and defaults used instead";
//   - an empty value is accepted and the default used;
//   - out-of-range results are clamped to the nearest bound, silently.
func parseNum(raw string, min, max int64) (numResult, error) {
	s := strings.TrimSpace(raw)
	if s == "" {
		return numResult{usedDefault: true}, nil
	}
	neg := false
	i := 0
	if s[0] == '-' || s[0] == '+' {
		neg = s[0] == '-'
		i++
	}
	start := i
	var n int64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		n = n*10 + int64(s[i]-'0')
		i++
	}
	digits := i - start
	trailingJunk := false
	if i < len(s) {
		switch s[i] {
		case 'k', 'K':
			n *= 1 << 10
		case 'm', 'M':
			n *= 1 << 20
		case 'g', 'G':
			n *= 1 << 30
		default:
			return numResult{}, fmt.Errorf("unknown suffix '%c' used for value '%s'", s[i], raw)
		}
		// Characters after the multiplier are silently discarded — the
		// "1M0" flaw (paper §5.2).
		trailingJunk = i+1 < len(s)
	}
	if digits == 0 && i >= len(s) {
		// "-" alone or bare sign: no digits, no suffix.
		return numResult{}, fmt.Errorf("invalid numeric value '%s'", raw)
	}
	if neg {
		n = -n
	}
	res := numResult{value: n, trailingJunk: trailingJunk}
	if n < min {
		res.value, res.clamped = min, true
	} else if n > max {
		res.value, res.clamped = max, true
	}
	return res, nil
}

// parseBool reproduces MySQL boolean option parsing: 0/1, ON/OFF,
// TRUE/FALSE (case-insensitive). Anything else is rejected at startup.
func parseBool(raw string) (bool, error) {
	switch strings.ToUpper(strings.TrimSpace(raw)) {
	case "1", "ON", "TRUE", "YES":
		return true, nil
	case "0", "OFF", "FALSE", "NO":
		return false, nil
	default:
		return false, fmt.Errorf("invalid boolean value '%s'", raw)
	}
}

// parseEnum validates an enumerated option value (case-insensitive), as
// MySQL does for sql_mode, binlog_format and friends.
func parseEnum(raw string, allowed []string) (string, error) {
	v := strings.TrimSpace(raw)
	for _, a := range allowed {
		if strings.EqualFold(a, v) {
			return a, nil
		}
	}
	return "", fmt.Errorf("invalid value '%s' (allowed: %s)", raw, strings.Join(allowed, ","))
}
