package mysqld

import (
	"strings"
	"testing"

	"conferr/internal/suts"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func startWith(t *testing.T, s *Server, conf string) error {
	t.Helper()
	return s.Start(suts.Files{ConfigFile: []byte(conf)})
}

func TestDefaultConfigStartsAndServes(t *testing.T) {
	s := newServer(t)
	files := s.DefaultConfig()
	if err := s.Start(files); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		if err := s.Stop(); err != nil {
			t.Errorf("Stop: %v", err)
		}
	}()
	for _, test := range Tests(s) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test %s: %v", test.Name, err)
		}
	}
	if s.Addr() == "" {
		t.Error("Addr empty after start")
	}
}

func TestRestartable(t *testing.T) {
	s := newServer(t)
	for i := 0; i < 3; i++ {
		if err := s.Start(s.DefaultConfig()); err != nil {
			t.Fatalf("round %d Start: %v", i, err)
		}
		if err := s.Stop(); err != nil {
			t.Fatalf("round %d Stop: %v", i, err)
		}
	}
	// Stop without start is safe.
	if err := s.Stop(); err != nil {
		t.Errorf("idle Stop: %v", err)
	}
}

func TestUnknownVariableRejected(t *testing.T) {
	s := newServer(t)
	err := startWith(t, s, "[mysqld]\nprot = 3306\n")
	if err == nil {
		s.Stop()
		t.Fatal("typo in directive name accepted")
	}
	if !suts.IsStartupError(err) || !strings.Contains(err.Error(), "unknown variable") {
		t.Errorf("err = %v", err)
	}
}

func TestCaseSensitiveNames(t *testing.T) {
	// Table 2: MySQL does not accept mixed-case directive names.
	s := newServer(t)
	err := startWith(t, s, "[mysqld]\nPort = 3306\n")
	if err == nil {
		s.Stop()
		t.Fatal("mixed-case name accepted")
	}
}

func TestTruncatedNamesAccepted(t *testing.T) {
	// Table 2: MySQL accepts unambiguous prefixes of option names.
	s := newServer(t)
	if err := startWith(t, s, "[mysqld]\nmax_c = 10\n"); err != nil {
		t.Fatalf("unambiguous prefix rejected: %v", err)
	}
	defer s.Stop()
	if s.settings.maxConn != 10 {
		t.Errorf("max_connections = %d, want 10", s.settings.maxConn)
	}
}

func TestAmbiguousPrefixRejected(t *testing.T) {
	s := newServer(t)
	// "max_" matches max_allowed_packet and max_connections.
	err := startWith(t, s, "[mysqld]\nmax_ = 10\n")
	if err == nil {
		s.Stop()
		t.Fatal("ambiguous prefix accepted")
	}
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("err = %v", err)
	}
}

func TestDashUnderscoreEquivalence(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, "[mysqld]\nmax-connections = 12\n"); err != nil {
		t.Fatalf("dashed name rejected: %v", err)
	}
	defer s.Stop()
	if s.settings.maxConn != 12 {
		t.Errorf("max_connections = %d", s.settings.maxConn)
	}
}

// The paper's §5.2 MySQL findings, each as a regression test.

func TestFindingOutOfBoundsSilentlyClamped(t *testing.T) {
	// "key_buffer_size=1 is accepted and ignored, although the value has
	// to be at least 8."
	s := newServer(t)
	if err := startWith(t, s, "[mysqld]\nkey_buffer_size = 1\n"); err != nil {
		t.Fatalf("out-of-bounds value rejected, want silent clamp: %v", err)
	}
	defer s.Stop()
	if got := s.settings.nums["key_buffer_size"]; got != 8 {
		t.Errorf("key_buffer_size = %d, want clamped to 8", got)
	}
	if len(s.Warnings()) == 0 {
		t.Error("clamping should leave a warning")
	}
}

func TestFindingMultiplierParsingStopsEarly(t *testing.T) {
	// "A value like '1M0' is accepted as valid."
	s := newServer(t)
	if err := startWith(t, s, "[mysqld]\nkey_buffer_size = 1M0\n"); err != nil {
		t.Fatalf("'1M0' rejected, want accepted-as-1M: %v", err)
	}
	defer s.Stop()
	if got := s.settings.nums["key_buffer_size"]; got != 1<<20 {
		t.Errorf("key_buffer_size = %d, want 1M", got)
	}
}

func TestFindingLeadingSuffixSilentlyDefaults(t *testing.T) {
	// "Numeric values that start with one of the mentioned suffixes are
	// silently ignored and defaults are used instead."
	s := newServer(t)
	if err := startWith(t, s, "[mysqld]\nkey_buffer_size = M16\n"); err != nil {
		t.Fatalf("leading-suffix value rejected, want silent default: %v", err)
	}
	defer s.Stop()
	// 0 × 1M = 0, clamped to the minimum 8 — accepted without error.
	if got := s.settings.nums["key_buffer_size"]; got != 8 {
		t.Errorf("key_buffer_size = %d, want min 8", got)
	}
}

func TestFindingValuelessDirectiveAccepted(t *testing.T) {
	// "Directives specified without a value are also accepted and
	// replaced with defaults."
	s := newServer(t)
	if err := startWith(t, s, "[mysqld]\nkey_buffer_size\n"); err != nil {
		t.Fatalf("valueless directive rejected: %v", err)
	}
	defer s.Stop()
	if _, set := s.settings.nums["key_buffer_size"]; set {
		t.Error("valueless directive should leave the default in place")
	}
}

func TestFindingSharedFileLatentErrors(t *testing.T) {
	// Errors in the auxiliary tools' groups are not detected at startup;
	// they surface only when the tool runs (paper §5.2).
	s := newServer(t)
	conf := "[mysqld]\nport = 0\n\n[mysqldump]\nquik\n"
	if err := startWith(t, s, conf); err != nil {
		t.Fatalf("latent error detected at startup: %v", err)
	}
	defer s.Stop()
	if err := s.CheckTool("mysqldump"); err == nil {
		t.Error("tool run should surface the latent typo")
	} else if !strings.Contains(err.Error(), "quik") {
		t.Errorf("tool error = %v", err)
	}
	if err := s.CheckTool("myisamchk"); err != nil {
		t.Errorf("clean group reported error: %v", err)
	}
	if err := s.CheckTool("nosuch"); err == nil {
		t.Error("unknown tool group should error")
	}
}

func TestUnknownSuffixRejected(t *testing.T) {
	// eval_num_suffix: a non-multiplier junk character is an error.
	s := newServer(t)
	err := startWith(t, s, "[mysqld]\nmax_connections = 15x1\n")
	if err == nil {
		s.Stop()
		t.Fatal("junk suffix accepted")
	}
	if !strings.Contains(err.Error(), "unknown suffix") {
		t.Errorf("err = %v", err)
	}
}

func TestEnumValidated(t *testing.T) {
	s := newServer(t)
	err := startWith(t, s, "[mysqld]\nbinlog_format = STATEMEMT\n")
	if err == nil {
		s.Stop()
		t.Fatal("bad enum accepted")
	}
	if err := startWith(t, s, "[mysqld]\nbinlog_format = row\n"); err != nil {
		t.Fatalf("case-insensitive enum value rejected: %v", err)
	}
	s.Stop()
}

func TestBoolValidated(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, "[mysqld]\nlow_priority_updates = maybe\n"); err == nil {
		s.Stop()
		t.Fatal("bad bool accepted")
	}
	if err := startWith(t, s, "[mysqld]\nlow_priority_updates = ON\n"); err != nil {
		t.Fatalf("ON rejected: %v", err)
	}
	defer s.Stop()
	if !s.settings.bools["low_priority_updates"] {
		t.Error("bool not applied")
	}
}

func TestStringAcceptedFreeform(t *testing.T) {
	// Non-path string variables accept anything; path variables are
	// validated against the simulated filesystem.
	s := newServer(t)
	if err := startWith(t, s, "[mysqld]\nsocket = /tmp/weird…name!!\n"); err != nil {
		t.Fatalf("odd socket file name rejected: %v", err)
	}
	s.Stop()
}

func TestPathValidation(t *testing.T) {
	s := newServer(t)
	// datadir must exist.
	if err := startWith(t, s, "[mysqld]\ndatadir = /var/lib/mysqlx\n"); err == nil {
		s.Stop()
		t.Fatal("bad datadir accepted")
	} else if !strings.Contains(err.Error(), "Can't change dir") {
		t.Errorf("err = %v", err)
	}
	// socket's directory must exist; file component is free.
	if err := startWith(t, s, "[mysqld]\nsocket = /tmpo/mysql.sock\n"); err == nil {
		s.Stop()
		t.Fatal("socket in missing directory accepted")
	}
	if err := startWith(t, s, "[mysqld]\nsocket = /tmp/other.sock\n"); err != nil {
		t.Fatalf("valid socket rejected: %v", err)
	}
	s.Stop()
	// Relative log_bin names are allowed (they live in datadir).
	if err := startWith(t, s, "[mysqld]\nlog_bin = mysql-bin\n"); err != nil {
		t.Fatalf("relative log_bin rejected: %v", err)
	}
	s.Stop()
}

func TestFlagWithValue(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, "[mysqld]\nskip-external-locking = 1\n"); err != nil {
		t.Fatalf("flag with value rejected: %v", err)
	}
	defer s.Stop()
	if !s.settings.flags["skip_external_locking"] {
		t.Error("flag not set")
	}
}

func TestMalformedGroupHeader(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, "[mysqld\nport = 1\n"); err == nil {
		s.Stop()
		t.Fatal("malformed group header accepted")
	}
}

func TestOptionBeforeAnyGroup(t *testing.T) {
	s := newServer(t)
	if err := startWith(t, s, "port = 3306\n"); err == nil {
		s.Stop()
		t.Fatal("option before any group accepted")
	}
}

func TestMissingConfigFile(t *testing.T) {
	s := newServer(t)
	if err := s.Start(suts.Files{}); err == nil {
		s.Stop()
		t.Fatal("missing config accepted")
	}
}

func TestPortTypoCaughtByFunctionalTest(t *testing.T) {
	s := newServer(t)
	conf := strings.Replace(string(s.DefaultConfig()[ConfigFile]),
		"port = ", "port = 1", 1) // prepend digit: different port
	if err := startWith(t, s, conf); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()
	failed := false
	for _, test := range Tests(s) {
		if test.Run() != nil {
			failed = true
		}
	}
	if !failed {
		t.Error("functional test should fail when the port is mutated")
	}
}

func TestMaxConnectionsEnforced(t *testing.T) {
	s := newServer(t)
	conf := string(s.DefaultConfig()[ConfigFile])
	conf = strings.Replace(conf, "max_connections = 151", "max_connections = 1", 1)
	if err := startWith(t, s, conf); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if s.settings.maxConn != 1 {
		t.Fatalf("maxConn = %d", s.settings.maxConn)
	}
}

func TestParseNumTable(t *testing.T) {
	cases := []struct {
		in      string
		min     int64
		max     int64
		want    int64
		clamped bool
		def     bool
		wantErr bool
	}{
		{"3306", 0, 65535, 3306, false, false, false},
		{"16M", 8, 1 << 42, 16 << 20, false, false, false},
		{"1M0", 8, 1 << 42, 1 << 20, false, false, false},
		{"1k", 0, 1 << 42, 1024, false, false, false},
		{"2G", 0, 1 << 42, 2 << 30, false, false, false},
		{"M16", 8, 1 << 42, 8, true, false, false},
		{"1", 8, 1 << 42, 8, true, false, false},
		{"999999", 0, 65535, 65535, true, false, false},
		{"-5", 0, 65535, 0, true, false, false},
		{"", 0, 10, 0, false, true, false},
		{"  ", 0, 10, 0, false, true, false},
		{"33o6", 0, 65535, 0, false, false, true},
		{"x", 0, 65535, 0, false, false, true},
		{"-", 0, 65535, 0, false, false, true},
		{"12kJUNK", 0, 1 << 42, 12 << 10, false, false, false},
	}
	for _, tt := range cases {
		res, err := parseNum(tt.in, tt.min, tt.max)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseNum(%q) succeeded, want error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseNum(%q): %v", tt.in, err)
			continue
		}
		if res.value != tt.want || res.clamped != tt.clamped || res.usedDefault != tt.def {
			t.Errorf("parseNum(%q) = %+v, want value=%d clamped=%v def=%v",
				tt.in, res, tt.want, tt.clamped, tt.def)
		}
	}
}

func TestLookupVar(t *testing.T) {
	if d, _ := lookupVar("port"); d == nil || d.name != "port" {
		t.Error("exact lookup failed")
	}
	if d, amb := lookupVar("max_c"); amb || d == nil || d.name != "max_connections" {
		t.Error("prefix lookup failed")
	}
	if _, amb := lookupVar("max_"); !amb {
		t.Error("ambiguous prefix not flagged")
	}
	if d, amb := lookupVar("zzz"); d != nil || amb {
		t.Error("unknown name should be nil, not ambiguous")
	}
}

func TestStrictModeRejectsSilentAcceptances(t *testing.T) {
	s := newServer(t)
	s.Strict = true
	cases := []string{
		"[mysqld]\nkey_buffer_size = 1\n",   // out of range (clamped when lax)
		"[mysqld]\nkey_buffer_size = 1M0\n", // trailing junk after multiplier
		"[mysqld]\nkey_buffer_size = M16\n", // leading suffix (0, clamped when lax)
		"[mysqld]\nkey_buffer_size\n",       // valueless directive
		"[mysqld]\nkey_buffer_size =\n",     // empty value
	}
	for _, conf := range cases {
		if err := startWith(t, s, conf); err == nil {
			s.Stop()
			t.Errorf("strict mode accepted %q", conf)
		} else if !suts.IsStartupError(err) {
			t.Errorf("err type %T for %q", err, conf)
		}
	}
	// Valid configurations still start.
	if err := s.Start(s.DefaultConfig()); err != nil {
		t.Fatalf("strict mode rejected the default config: %v", err)
	}
	s.Stop()
}
