package mysqld

import (
	"fmt"
	"net"
	"strings"

	"conferr/internal/sqlmini"
	"conferr/internal/suts"
)

// ConfigFile is the logical name of the simulator's configuration file.
const ConfigFile = "my.cnf"

// Server is the simulated MySQL server.
type Server struct {
	port int // default port written into DefaultConfig

	// Strict, when set before Start, turns the silent acceptances the
	// paper flags as flaws (§5.2) into startup errors: out-of-range
	// values, trailing junk after a multiplier, and valueless directives
	// are rejected instead of absorbed. It models the "simple checks that
	// could significantly improve resilience" the paper says the profile
	// reveals, and exists so campaigns can quantify that improvement
	// (profile.Compare).
	Strict bool

	// state of the running instance
	srv      *sqlmini.Server
	settings settings
	warnings []string
	// latent holds the raw lines of non-server groups, unparsed at
	// startup — the shared-config design flaw (paper §5.2).
	latent map[string][]string
}

// settings is the effective [mysqld] configuration after parsing.
type settings struct {
	nums    map[string]int64
	strs    map[string]string
	bools   map[string]bool
	enums   map[string]string
	flags   map[string]bool
	port    int64
	maxConn int64
}

var _ suts.System = (*Server)(nil)
var _ suts.Addressable = (*Server)(nil)

// New returns a simulator whose default configuration listens on the given
// TCP port (use a free high port; 0 is replaced by an OS-assigned one at
// construction time so the default config is always concrete).
func New(port int) (*Server, error) {
	if port == 0 {
		p, err := freePort()
		if err != nil {
			return nil, err
		}
		port = p
	}
	return &Server{port: port}, nil
}

// freePort asks the kernel for an unused TCP port.
func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, fmt.Errorf("mysqld: allocating port: %w", err)
	}
	defer func() { _ = ln.Close() }()
	return ln.Addr().(*net.TCPAddr).Port, nil
}

// Name implements suts.System.
func (s *Server) Name() string { return "mysql-sim" }

// DefaultPort returns the port of the default configuration — what an
// administrator (and the functional tests) expect the server to listen on.
func (s *Server) DefaultPort() int { return s.port }

// DefaultConfig implements suts.System: the server group of a
// my-medium.cnf-style file, 14 directives in total (paper §5.1).
func (s *Server) DefaultConfig() suts.Files {
	conf := fmt.Sprintf(`# Example MySQL config file for medium systems.
[mysqld]
port = %d
socket = /tmp/mysql.sock
datadir = /var/lib/mysql
skip-external-locking
key_buffer_size = 16M
max_allowed_packet = 1M
table_open_cache = 64
sort_buffer_size = 512K
net_buffer_length = 8K
read_buffer_size = 256K
thread_stack = 192K
thread_cache_size = 8
max_connections = 151
wait_timeout = 28800
`, s.port)
	return suts.Files{ConfigFile: []byte(conf)}
}

// SharedConfig returns the default configuration extended with the
// auxiliary tools' groups — the shared my.cnf whose non-server sections
// are latent at startup, the design flaw of §5.2.
func (s *Server) SharedConfig() suts.Files {
	base := string(s.DefaultConfig()[ConfigFile])
	base += `
[mysqldump]
quick
max_allowed_packet = 16M

[myisamchk]
key_buffer_size = 20M
`
	return suts.Files{ConfigFile: []byte(base)}
}

// FullConfig returns a [mysqld] configuration listing every modeled server
// variable with its default value, excluding booleans, flags and variables
// without defaults — the §5.5 comparison faultload.
func (s *Server) FullConfig() suts.Files {
	var b strings.Builder
	b.WriteString("# full variable listing\n[mysqld]\n")
	for _, v := range serverVars {
		if v.kind == kindBool || v.kind == kindFlag || v.def == "" {
			continue
		}
		val := v.def
		if v.name == "port" {
			val = fmt.Sprint(s.port)
		}
		fmt.Fprintf(&b, "%s = %s\n", v.name, val)
	}
	return suts.Files{ConfigFile: []byte(b.String())}
}

// serverGroups are the option groups mysqld itself reads; everything else
// in the shared file is left for the auxiliary tools.
var serverGroups = map[string]bool{"mysqld": true, "server": true}

// Start implements suts.System: it parses the configuration the way MySQL
// does and begins serving the sqlmini protocol on the configured port.
func (s *Server) Start(files suts.Files) error {
	data, ok := files[ConfigFile]
	if !ok {
		return &suts.StartupError{System: s.Name(), Msg: "missing " + ConfigFile}
	}
	st, latent, warns, err := s.parseConfig(string(data))
	if err != nil {
		return &suts.StartupError{System: s.Name(), Msg: err.Error()}
	}
	s.settings = st
	s.latent = latent
	s.warnings = warns

	eng := &sqlmini.Engine{}
	srv := sqlmini.NewServer(eng)
	srv.MaxConns = int(st.maxConn)
	addr := fmt.Sprintf("127.0.0.1:%d", st.port)
	if st.port == 0 {
		addr = "127.0.0.1:0"
	}
	if err := srv.Listen(addr); err != nil {
		// An un-bindable port is observable at startup, exactly like a
		// rejected configuration value.
		return &suts.StartupError{System: s.Name(), Msg: err.Error()}
	}
	s.srv = srv
	return nil
}

// Stop implements suts.System.
func (s *Server) Stop() error {
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	s.srv = nil
	return err
}

// Addr implements suts.Addressable.
func (s *Server) Addr() string {
	if s.srv == nil {
		return ""
	}
	return s.srv.Addr()
}

// Warnings returns the silent adjustments made while parsing the current
// configuration (clamped values, defaulted junk) — visible only in the
// error log, never fatal, which is the design flaw the paper calls out.
func (s *Server) Warnings() []string {
	out := make([]string, len(s.warnings))
	copy(out, s.warnings)
	return out
}

// parseConfig applies MySQL's option-file semantics to the shared my.cnf.
func (s *Server) parseConfig(conf string) (settings, map[string][]string, []string, error) {
	st := settings{
		nums:  make(map[string]int64),
		strs:  make(map[string]string),
		bools: make(map[string]bool),
		enums: make(map[string]string),
		flags: make(map[string]bool),
		// Defaults for the knobs the simulator acts on.
		port:    3306,
		maxConn: 151,
	}
	latent := make(map[string][]string)
	var warns []string

	group := ""
	for _, line := range strings.Split(conf, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, ";") {
			continue
		}
		if strings.HasPrefix(t, "[") {
			end := strings.IndexByte(t, ']')
			if end < 0 {
				return st, nil, nil, fmt.Errorf("wrong group definition in config file: %s", t)
			}
			group = strings.TrimSpace(t[1:end])
			continue
		}
		if !serverGroups[group] {
			// Shared file: other tools' groups are not parsed at startup;
			// any errors in them stay latent (paper §5.2).
			if group != "" {
				latent[group] = append(latent[group], t)
			} else {
				// Directives before any group header: mysqld rejects them.
				return st, nil, nil, fmt.Errorf("option without preceding group in config file: %s", t)
			}
			continue
		}
		name, value, hasValue := splitOption(t)
		if err := applyOption(&st, name, value, hasValue, s.Strict, &warns); err != nil {
			return st, nil, nil, err
		}
	}
	return st, latent, warns, nil
}

// splitOption splits "name = value" / "name=value" / "name".
func splitOption(line string) (name, value string, hasValue bool) {
	if eq := strings.IndexByte(line, '='); eq >= 0 {
		return strings.TrimSpace(line[:eq]), strings.TrimSpace(line[eq+1:]), true
	}
	return strings.TrimSpace(line), "", false
}

// normalizeName maps '-' to '_' (MySQL treats them interchangeably in
// option names) — note this does not change case: option names are
// case-sensitive (Table 2).
func normalizeName(name string) string {
	return strings.ReplaceAll(name, "-", "_")
}

func applyOption(st *settings, name, value string, hasValue, strict bool, warns *[]string) error {
	def, ambiguous := lookupVar(normalizeName(name))
	if ambiguous {
		return fmt.Errorf("ambiguous option '--%s'", name)
	}
	if def == nil {
		return fmt.Errorf("unknown variable '%s=%s'", name, value)
	}
	// A directive with no value (or an empty one) is accepted and the
	// default silently used (paper §5.2) — except flags, where presence is
	// the value. Strict mode rejects it.
	if def.kind != kindFlag && (!hasValue || strings.TrimSpace(value) == "") {
		if strict {
			return fmt.Errorf("option '%s' requires a value", def.name)
		}
		*warns = append(*warns, fmt.Sprintf("option '%s' given without a value; using default", def.name))
		return nil
	}
	switch def.kind {
	case kindInt, kindSize:
		res, err := parseNum(value, def.min, def.max)
		if err != nil {
			return fmt.Errorf("option '%s': %s", def.name, err.Error())
		}
		if res.usedDefault {
			if strict {
				return fmt.Errorf("option '%s' requires a value", def.name)
			}
			*warns = append(*warns, fmt.Sprintf("option '%s': empty value; using default", def.name))
			return nil
		}
		if res.trailingJunk && strict {
			return fmt.Errorf("option '%s': trailing characters after multiplier in '%s'", def.name, value)
		}
		if res.clamped {
			if strict {
				return fmt.Errorf("option '%s': value '%s' out of range [%d, %d]",
					def.name, value, def.min, def.max)
			}
			*warns = append(*warns, fmt.Sprintf("option '%s': value adjusted to %d", def.name, res.value))
		}
		st.nums[def.name] = res.value
		switch def.name {
		case "port":
			st.port = res.value
		case "max_connections":
			st.maxConn = res.value
		}
	case kindBool:
		b, err := parseBool(value)
		if err != nil {
			return fmt.Errorf("option '%s': %s", def.name, err.Error())
		}
		st.bools[def.name] = b
	case kindEnum:
		v, err := parseEnum(value, def.enum)
		if err != nil {
			return fmt.Errorf("option '%s': %s", def.name, err.Error())
		}
		st.enums[def.name] = v
	case kindString:
		if err := checkPath(def.name, value); err != nil {
			return err
		}
		st.strs[def.name] = value
	case kindFlag:
		if hasValue {
			b, err := parseBool(value)
			if err != nil {
				return fmt.Errorf("option '%s': %s", def.name, err.Error())
			}
			st.flags[def.name] = b
		} else {
			st.flags[def.name] = true
		}
	}
	return nil
}

// knownDirs simulates the host filesystem: the directories that exist on
// the test machine. MySQL fails at startup when datadir does not exist
// ("Can't change dir to ...") or when the directory that should hold the
// socket or a log file is missing — so typos in the directory part of a
// path are detected while typos in the final component are not.
var knownDirs = map[string]bool{
	"/":                        true,
	"/tmp":                     true,
	"/var":                     true,
	"/var/lib":                 true,
	"/var/lib/mysql":           true,
	"/var/log":                 true,
	"/var/log/mysql":           true,
	"/var/run":                 true,
	"/var/run/mysqld":          true,
	"/usr":                     true,
	"/usr/share":               true,
	"/usr/share/mysql":         true,
	"/usr/share/mysql/english": true,
}

// checkPath validates path-valued variables against the simulated
// filesystem, and bind_address against the resolvable addresses.
func checkPath(name, value string) error {
	switch name {
	case "bind_address":
		switch value {
		case "127.0.0.1", "localhost", "0.0.0.0", "*", "::":
			return nil
		default:
			return fmt.Errorf("Can't start server: Bind on TCP/IP port: cannot resolve '%s'", value)
		}
	case "datadir", "basedir", "language", "tmpdir":
		// The directory itself must exist.
		if !knownDirs[strings.TrimSuffix(value, "/")] {
			return fmt.Errorf("Can't change dir to '%s' (option '%s')", value, name)
		}
	case "socket", "log_error", "log_bin":
		// The containing directory must exist; the file is created. A
		// relative name (log_bin default) lives in datadir.
		dir := parentDir(value)
		if dir != "" && !knownDirs[dir] {
			return fmt.Errorf("Can't create file '%s': no such directory (option '%s')", value, name)
		}
	}
	return nil
}

// parentDir returns the directory part of an absolute path ("" for
// relative names, "/" for top-level files).
func parentDir(path string) string {
	i := strings.LastIndexByte(path, '/')
	switch {
	case i < 0:
		return ""
	case i == 0:
		return "/"
	default:
		return path[:i]
	}
}

// CheckTool simulates running one of the auxiliary tools that share
// my.cnf (e.g. mysqldump from a nightly cron job): it parses the latent
// group and returns the error an administrator would only see then.
func (s *Server) CheckTool(group string) error {
	known := map[string]map[string]bool{
		"mysqldump": {"quick": true, "max_allowed_packet": true, "host": true, "user": true},
		"myisamchk": {"key_buffer_size": true, "sort_buffer_size": true},
	}
	vars, ok := known[group]
	if !ok {
		return fmt.Errorf("mysqld: unknown tool group %q", group)
	}
	for _, line := range s.latent[group] {
		name, _, _ := splitOption(line)
		if !vars[normalizeName(name)] {
			return fmt.Errorf("%s: unknown option '%s'", group, name)
		}
	}
	return nil
}

// Tests returns the functional test suite the paper uses for databases:
// create a database, create a table, populate it, query it (§5.1). The
// tests dial the default port — a mutated port means the administrator's
// check fails.
func Tests(s *Server) []suts.Test {
	return []suts.Test{{
		Name: "db-roundtrip",
		Run: func() error {
			c, err := sqlmini.Dial(fmt.Sprintf("127.0.0.1:%d", s.DefaultPort()))
			if err != nil {
				return fmt.Errorf("connect: %w", err)
			}
			defer func() { _ = c.Close() }()
			for _, stmt := range []string{
				"CREATE DATABASE conferr_test",
				"USE conferr_test",
				"CREATE TABLE t (id, name)",
				"INSERT INTO t VALUES (1, 'alpha')",
			} {
				if _, _, err := c.Exec(stmt); err != nil {
					return fmt.Errorf("%s: %w", stmt, err)
				}
			}
			rows, _, err := c.Exec("SELECT name FROM t WHERE id = 1")
			if err != nil {
				return fmt.Errorf("select: %w", err)
			}
			if len(rows) != 1 || rows[0][0] != "alpha" {
				return fmt.Errorf("unexpected result %v", rows)
			}
			return nil
		},
	}}
}
