// Package nginx implements a simulated nginx web server: a real HTTP
// server whose configuration parser faithfully models the documented
// startup behaviour of nginx — brace-block syntax, a context-checked
// directive table, per-directive argument validation, and nginx's own
// error wording — driven by the nginxconf format's nested-block files.
package nginx

import (
	stdcontext "context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"conferr/internal/suts"
)

// ConfigFile is the logical name of the simulator's configuration file.
const ConfigFile = "nginx.conf"

// Server is the simulated nginx daemon.
type Server struct {
	port int
	tr   suts.Transport

	mu    sync.Mutex
	bound map[int]*binding // live listeners by port
	order []int            // bound ports in configuration order
	wg    sync.WaitGroup

	clientOnce sync.Once
	client     *http.Client
}

// binding is one listening port: its listener, the serving http.Server,
// and the swappable handler a reload retargets in place.
type binding struct {
	ln  net.Listener
	srv *http.Server
	h   *swapHandler
}

// swapHandler lets a warm reload swap a port's routing table without
// rebinding the listener or dropping keep-alive connections.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.HandlerFunc).ServeHTTP(w, r)
}

var _ suts.System = (*Server)(nil)
var _ suts.Addressable = (*Server)(nil)
var _ suts.Reloader = (*Server)(nil)
var _ suts.Validator = (*Server)(nil)
var _ suts.HealthChecker = (*Server)(nil)
var _ suts.TransportSetter = (*Server)(nil)

// New returns a simulator whose default configuration listens on the
// given TCP port (0 picks a free one at construction time).
func New(port int) (*Server, error) {
	if port == 0 {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("nginx: allocating port: %w", err)
		}
		port = ln.Addr().(*net.TCPAddr).Port
		if err := ln.Close(); err != nil {
			return nil, fmt.Errorf("nginx: releasing probe listener: %w", err)
		}
	}
	return &Server{port: port}, nil
}

// Name implements suts.System.
func (s *Server) Name() string { return "nginx-sim" }

// DefaultPort returns the port of the default configuration.
func (s *Server) DefaultPort() int { return s.port }

// DefaultConfig implements suts.System: a configuration modeled on a
// stock nginx.conf — main, events and http contexts, two name-based
// virtual hosts on one port, and nested location blocks three levels
// deep.
func (s *Server) DefaultConfig() suts.Files {
	conf := fmt.Sprintf(`# nginx configuration (simulated)
user nginx;
worker_processes auto;
pid /run/nginx.pid;
error_log /var/log/nginx/error.log warn;

events {
    worker_connections 1024;
    multi_accept on;
}

http {
    include /etc/nginx/mime.types;
    default_type application/octet-stream;
    log_format main '$remote_addr - $remote_user [$time_local] "$request" $status';
    access_log /var/log/nginx/access.log main;
    sendfile on;
    tcp_nopush on;
    tcp_nodelay on;
    keepalive_timeout 65;
    types_hash_max_size 2048;
    client_max_body_size 8m;
    gzip on;
    server_tokens off;

    server {
        listen %d;
        server_name www.example.com;
        root /var/www/html;
        index index.html index.htm;
        error_page 404 /404.html;

        location / {
            root /var/www/html;
            index index.html;
        }
        location /static/ {
            root /var/www/static;
            autoindex off;
            expires 30d;
        }
    }

    server {
        listen %d;
        server_name blog.example.com;
        root /var/www/blog;
        access_log /var/log/nginx/blog.log main;

        location / {
            root /var/www/blog;
            try_files $uri $uri/ /index.html;
        }
    }
}
`, s.port, s.port)
	return suts.Files{ConfigFile: []byte(conf)}
}

// location is one location block: a prefix and the root that marks
// responses served from it.
type location struct {
	prefix string
	root   string
}

// vserver is one server block.
type vserver struct {
	ports     []int
	names     []string
	root      string
	locations []location
}

// parsed is the effective configuration.
type parsed struct {
	sawEvents bool
	servers   []vserver
}

// check parses and validates a configuration without touching listener
// state, returning the effective server blocks and the unique ports to
// bind in configuration order. Errors carry nginx's startup wording.
func (s *Server) check(files suts.Files) ([]vserver, []int, error) {
	data, ok := files[ConfigFile]
	if !ok {
		return nil, nil, &suts.StartupError{System: s.Name(), Msg: "missing " + ConfigFile}
	}
	cfg, err := parseConfig(string(data))
	if err != nil {
		return nil, nil, &suts.StartupError{System: s.Name(), Msg: err.Error()}
	}
	if !cfg.sawEvents {
		return nil, nil, &suts.StartupError{System: s.Name(), Msg: `no "events" section in configuration`}
	}

	// One listener per unique port; the first server block naming a port
	// is its default server, later ones are name-based virtual hosts.
	var ports []int
	seen := map[int]bool{}
	for si := range cfg.servers {
		sv := &cfg.servers[si]
		if len(sv.ports) == 0 {
			// A server block without listen falls back to a default port.
			// Real nginx uses :80, but binding a fixed privileged port
			// would make the outcome depend on the environment (root vs
			// not) and on which concurrent worker wins the bind race; the
			// instance's own default port keeps the omit-listen fault
			// deterministic at any worker width — the server silently
			// joins the default port's virtual hosts, a latent
			// misconfiguration only the per-host functional tests see.
			sv.ports = []int{s.port}
		}
		for _, p := range sv.ports {
			if !seen[p] {
				seen[p] = true
				ports = append(ports, p)
			}
		}
	}
	return cfg.servers, ports, nil
}

// Start implements suts.System.
func (s *Server) Start(files suts.Files) error { return s.configure(files) }

// Reload implements suts.Reloader: it applies a new configuration to the
// running server the way `nginx -s reload` does — configuration errors
// are rejected with Start's exact wording while the previous
// configuration keeps serving; ports shared between old and new
// configuration keep their listener (and established keep-alive
// connections), only the routing tables are swapped.
func (s *Server) Reload(files suts.Files) error { return s.configure(files) }

// Validate implements suts.Validator: the `nginx -t` parse-and-check
// path. It detects exactly Start's configuration rejections; bind-time
// failures are invisible to it.
func (s *Server) Validate(files suts.Files) error {
	_, _, err := s.check(files)
	return err
}

// configure drives the server to the given configuration from whatever
// is currently bound — everything for a cold start, nothing on a no-op
// reload. On error the previous state is untouched (empty for a cold
// start), so a rejected reload keeps serving the old configuration.
func (s *Server) configure(files suts.Files) error {
	servers, ports, err := s.check(files)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Bind the ports the new configuration adds, in configuration order
	// so a multi-failure reports the same port a cold start would.
	created := map[int]*binding{}
	for _, port := range ports {
		if _, held := s.bound[port]; held {
			continue
		}
		ln, err := s.transport().Listen(fmt.Sprintf("127.0.0.1:%d", port))
		if err != nil {
			for _, b := range created {
				_ = b.ln.Close()
				_ = b.srv.Close()
			}
			return &suts.StartupError{System: s.Name(),
				Msg: fmt.Sprintf("bind() to 127.0.0.1:%d failed: %v", port, err)}
		}
		h := &swapHandler{}
		h.h.Store(http.HandlerFunc(http.NotFound))
		srv := &http.Server{Handler: h}
		created[port] = &binding{ln: ln, srv: srv, h: h}
		s.wg.Add(1)
		go func(srv *http.Server, l net.Listener) {
			defer s.wg.Done()
			_ = srv.Serve(l)
		}(srv, ln)
	}

	// Commit: adopt the new bindings, retarget every retained port's
	// handler, drop ports the new configuration no longer listens on.
	want := map[int]bool{}
	for _, p := range ports {
		want[p] = true
	}
	if s.bound == nil {
		s.bound = map[int]*binding{}
	}
	for p, b := range created {
		s.bound[p] = b
	}
	for p, b := range s.bound {
		if !want[p] {
			_ = b.ln.Close()
			_ = b.srv.Close()
			delete(s.bound, p)
			continue
		}
		b.h.h.Store(http.HandlerFunc(handlerFor(servers, p).ServeHTTP))
	}
	s.order = ports
	return nil
}

// handlerFor builds the request handler of one listening port: match the
// Host header against the server_names of the servers on that port
// (falling back to the port's first server), then the longest location
// prefix, and answer with markers that let functional tests tell exactly
// which server and location produced the response.
func handlerFor(servers []vserver, port int) http.Handler {
	var onPort []vserver
	for _, sv := range servers {
		for _, p := range sv.ports {
			if p == port {
				onPort = append(onPort, sv)
				break
			}
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Server", "nginx-sim/1.0")
		host := r.Host
		if i := strings.LastIndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		srv := onPort[0]
		for _, cand := range onPort {
			if matchesName(cand.names, host) {
				srv = cand
				break
			}
		}
		root, loc := srv.root, ""
		best := -1
		for _, l := range srv.locations {
			if strings.HasPrefix(r.URL.Path, l.prefix) && len(l.prefix) > best {
				best = len(l.prefix)
				loc = l.prefix
				if l.root != "" {
					root = l.root
				}
			}
		}
		name := ""
		if len(srv.names) > 0 {
			name = srv.names[0]
		}
		fmt.Fprintf(w, "<html><body><h1>Welcome to nginx-sim!</h1><p>server=%s</p><p>location=%s</p><p>root=%s</p></body></html>\n",
			name, loc, root)
	})
}

// matchesName compares a request host against a server's server_names,
// case-insensitively.
func matchesName(names []string, host string) bool {
	for _, n := range names {
		if strings.EqualFold(n, host) {
			return true
		}
	}
	return false
}

// Stop implements suts.System.
func (s *Server) Stop() error {
	s.mu.Lock()
	bound := s.bound
	s.bound = nil
	s.order = nil
	s.mu.Unlock()
	for _, b := range bound {
		_ = b.ln.Close()
		_ = b.srv.Close()
	}
	s.wg.Wait()
	return nil
}

// Health implements suts.HealthChecker: a running server has at least
// one bound listener.
func (s *Server) Health() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.bound) == 0 {
		return fmt.Errorf("nginx-sim: no listeners bound")
	}
	return nil
}

// SetTransport implements suts.TransportSetter. Must be called before
// Start; it moves both the listeners and the functional tests' dials.
func (s *Server) SetTransport(t suts.Transport) { s.tr = t }

// transport returns the configured transport, defaulting to TCP.
func (s *Server) transport() suts.Transport {
	if s.tr == nil {
		return suts.TCPTransport{}
	}
	return s.tr
}

// Addr implements suts.Addressable (first configured port's listener).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.order {
		if b, ok := s.bound[p]; ok {
			return b.ln.Addr().String()
		}
	}
	return ""
}

// parseConfig applies nginx's startup semantics to the configuration
// text: brace-block syntax, directive lookup, context checking and
// argument validation, erroring with nginx's wording.
func parseConfig(conf string) (parsed, error) {
	var cfg parsed
	type frame struct {
		ctx context
		tag string
		srv *vserver
		loc *location
	}
	stack := []frame{{ctx: ctxMain}}
	for lineno, line := range strings.Split(conf, "\n") {
		t := strings.TrimSpace(line)
		t = stripComment(t)
		if t == "" {
			continue
		}
		switch {
		case t == "}":
			if len(stack) == 1 {
				return cfg, fmt.Errorf(`unexpected "}" in %s:%d`, ConfigFile, lineno+1)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.loc != nil {
				// A closing location attaches to its enclosing server
				// (nested locations flatten onto the server, prefix
				// matching makes the nesting irrelevant at serve time).
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].srv != nil {
						stack[i].srv.locations = append(stack[i].srv.locations, *top.loc)
						break
					}
				}
			}
		case strings.HasSuffix(t, "{"):
			name, args := splitDirective(strings.TrimRight(t[:len(t)-1], " \t"))
			def := lookupDirective(name)
			if def == nil {
				return cfg, fmt.Errorf("unknown directive %q in %s:%d", name, ConfigFile, lineno+1)
			}
			if def.kind != argBlock {
				return cfg, fmt.Errorf("directive %q has no opening \"{\" form in %s:%d", name, ConfigFile, lineno+1)
			}
			cur := stack[len(stack)-1].ctx
			if def.contexts&cur == 0 {
				return cfg, fmt.Errorf("%q directive is not allowed here in %s:%d", name, ConfigFile, lineno+1)
			}
			if _, err := checkArgs(def, args); err != nil {
				return cfg, fmt.Errorf("%v in %s:%d", err, ConfigFile, lineno+1)
			}
			fr := frame{tag: name}
			switch name {
			case "events":
				fr.ctx = ctxEvents
				cfg.sawEvents = true
			case "http":
				fr.ctx = ctxHTTP
			case "server":
				fr.ctx = ctxServer
				cfg.servers = append(cfg.servers, vserver{})
				fr.srv = &cfg.servers[len(cfg.servers)-1]
			case "location":
				fr.ctx = ctxLocation
				fr.loc = &location{prefix: args[len(args)-1]}
			}
			stack = append(stack, fr)
		case strings.HasSuffix(t, ";"):
			name, args := splitDirective(strings.TrimRight(t[:len(t)-1], " \t"))
			def := lookupDirective(name)
			if def == nil {
				return cfg, fmt.Errorf("unknown directive %q in %s:%d", name, ConfigFile, lineno+1)
			}
			if def.kind == argBlock {
				return cfg, fmt.Errorf("directive %q has no terminating \";\" form in %s:%d", name, ConfigFile, lineno+1)
			}
			cur := stack[len(stack)-1].ctx
			if def.contexts&cur == 0 {
				return cfg, fmt.Errorf("%q directive is not allowed here in %s:%d", name, ConfigFile, lineno+1)
			}
			port, err := checkArgs(def, args)
			if err != nil {
				return cfg, fmt.Errorf("%v in %s:%d", err, ConfigFile, lineno+1)
			}
			top := stack[len(stack)-1]
			switch name {
			case "listen":
				for _, p := range top.srv.ports {
					if p == port {
						return cfg, fmt.Errorf("duplicate listen options for 127.0.0.1:%d in %s:%d", port, ConfigFile, lineno+1)
					}
				}
				top.srv.ports = append(top.srv.ports, port)
			case "server_name":
				top.srv.names = append(top.srv.names, args...)
			case "root":
				if top.loc != nil {
					top.loc.root = args[0]
				} else if top.srv != nil {
					top.srv.root = args[0]
				}
			}
		default:
			name, _ := splitDirective(t)
			return cfg, fmt.Errorf("directive %q is not terminated by \";\" in %s:%d", name, ConfigFile, lineno+1)
		}
	}
	if len(stack) != 1 {
		return cfg, fmt.Errorf(`unexpected end of file, expecting "}" in %s`, ConfigFile)
	}
	return cfg, nil
}

// splitDirective splits "name arg arg…" on whitespace.
func splitDirective(s string) (string, []string) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return "", nil
	}
	return fields[0], fields[1:]
}

// stripComment removes a trailing '#' comment from an already-trimmed
// line (a '#' opens a comment anywhere outside nginx's quoting, which
// the simulator does not model beyond single-quoted log formats).
func stripComment(t string) string {
	inQuote := false
	for i := 0; i < len(t); i++ {
		switch t[i] {
		case '\'':
			inQuote = !inQuote
		case '#':
			if !inQuote {
				return strings.TrimRight(t[:i], " \t")
			}
		}
	}
	return t
}

// httpClient returns the server's shared functional-test client. Its
// dials go through the configured transport (read at dial time, so
// SetTransport may come after Tests is built), and its keep-alive pool
// lets warm-reload experiments reuse connections to retained listeners.
func (s *Server) httpClient() *http.Client {
	s.clientOnce.Do(func() {
		s.client = &http.Client{
			Timeout: 5 * time.Second,
			Transport: &http.Transport{
				DialContext: func(ctx stdcontext.Context, network, addr string) (net.Conn, error) {
					return s.transport().Dial(addr)
				},
				MaxIdleConnsPerHost: 4,
			},
		}
	})
	return s.client
}

// Tests returns the web-server diagnosis, the paper-style functional
// checks an administrator would run: a plain GET against the default
// server, a virtual-host GET that must be answered by the blog server,
// and a GET under /static/ that must be served from the static location.
func Tests(s *Server) []suts.Test {
	get := func(path, host string) (string, error) {
		client := s.httpClient()
		req, err := http.NewRequest("GET", fmt.Sprintf("http://127.0.0.1:%d%s", s.DefaultPort(), path), nil)
		if err != nil {
			return "", err
		}
		if host != "" {
			req.Host = host
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", fmt.Errorf("GET: %w", err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		return string(body), nil
	}
	return []suts.Test{
		{
			Name: "http-get",
			Run: func() error {
				body, err := get("/", "")
				if err != nil {
					return err
				}
				if !strings.Contains(body, "root=/var/www/html") {
					return fmt.Errorf("default server did not serve the html root: %q", body)
				}
				return nil
			},
		},
		{
			Name: "vhost-blog",
			Run: func() error {
				body, err := get("/", "blog.example.com")
				if err != nil {
					return err
				}
				if !strings.Contains(body, "server=blog.example.com") {
					return fmt.Errorf("blog virtual host not answering: %q", body)
				}
				return nil
			},
		},
		{
			Name: "static-location",
			Run: func() error {
				body, err := get("/static/logo.png", "")
				if err != nil {
					return err
				}
				if !strings.Contains(body, "root=/var/www/static") {
					return fmt.Errorf("static location not matched: %q", body)
				}
				return nil
			},
		},
	}
}
