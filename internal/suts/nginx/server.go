// Package nginx implements a simulated nginx web server: a real HTTP
// server whose configuration parser faithfully models the documented
// startup behaviour of nginx — brace-block syntax, a context-checked
// directive table, per-directive argument validation, and nginx's own
// error wording — driven by the nginxconf format's nested-block files.
package nginx

import (
	"bytes"
	stdcontext "context"
	"fmt"
	"io"
	"net"
	"net/http"
	"slices"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"conferr/internal/suts"
	"conferr/internal/suts/httpprobe"
)

// ConfigFile is the logical name of the simulator's configuration file.
const ConfigFile = "nginx.conf"

// Server is the simulated nginx daemon.
type Server struct {
	port int
	tr   suts.Transport

	mu    sync.Mutex
	bound map[int]*binding // live listeners by port
	order []int            // bound ports in configuration order
	wg    sync.WaitGroup

	clientOnce sync.Once
	client     *http.Client

	// baseMemo caches the checked parse of the campaign-baseline
	// nginx.conf across warm reloads (see suts.ParseMemo for why the
	// identity keying is sound).
	baseMemo suts.ParseMemo[checkedConfig]
}

// checkedConfig is a parsed-and-checked configuration, the unit the
// baseline memo caches and apply consumes.
type checkedConfig struct {
	servers []vserver
	ports   []int
}

// binding is one listening port: its listener and the serving probe
// server, whose handler a warm reload retargets in place without
// rebinding the listener or dropping keep-alive connections.
type binding struct {
	ln net.Listener
	ps *httpprobe.Server
}

var _ suts.System = (*Server)(nil)
var _ suts.Addressable = (*Server)(nil)
var _ suts.Reloader = (*Server)(nil)
var _ suts.DirtyReloader = (*Server)(nil)
var _ suts.Validator = (*Server)(nil)
var _ suts.HealthChecker = (*Server)(nil)
var _ suts.TransportSetter = (*Server)(nil)

// New returns a simulator whose default configuration listens on the
// given TCP port (0 picks a free one at construction time).
func New(port int) (*Server, error) {
	if port == 0 {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("nginx: allocating port: %w", err)
		}
		port = ln.Addr().(*net.TCPAddr).Port
		if err := ln.Close(); err != nil {
			return nil, fmt.Errorf("nginx: releasing probe listener: %w", err)
		}
	}
	return &Server{port: port}, nil
}

// Name implements suts.System.
func (s *Server) Name() string { return "nginx-sim" }

// DefaultPort returns the port of the default configuration.
func (s *Server) DefaultPort() int { return s.port }

// DefaultConfig implements suts.System: a configuration modeled on a
// stock nginx.conf — main, events and http contexts, two name-based
// virtual hosts on one port, and nested location blocks three levels
// deep.
func (s *Server) DefaultConfig() suts.Files {
	conf := fmt.Sprintf(`# nginx configuration (simulated)
user nginx;
worker_processes auto;
pid /run/nginx.pid;
error_log /var/log/nginx/error.log warn;

events {
    worker_connections 1024;
    multi_accept on;
}

http {
    include /etc/nginx/mime.types;
    default_type application/octet-stream;
    log_format main '$remote_addr - $remote_user [$time_local] "$request" $status';
    access_log /var/log/nginx/access.log main;
    sendfile on;
    tcp_nopush on;
    tcp_nodelay on;
    keepalive_timeout 65;
    types_hash_max_size 2048;
    client_max_body_size 8m;
    gzip on;
    server_tokens off;

    server {
        listen %d;
        server_name www.example.com;
        root /var/www/html;
        index index.html index.htm;
        error_page 404 /404.html;

        location / {
            root /var/www/html;
            index index.html;
        }
        location /static/ {
            root /var/www/static;
            autoindex off;
            expires 30d;
        }
    }

    server {
        listen %d;
        server_name blog.example.com;
        root /var/www/blog;
        access_log /var/log/nginx/blog.log main;

        location / {
            root /var/www/blog;
            try_files $uri $uri/ /index.html;
        }
    }
}
`, s.port, s.port)
	return suts.Files{ConfigFile: []byte(conf)}
}

// location is one location block: a prefix and the root that marks
// responses served from it.
type location struct {
	prefix string
	root   string
}

// vserver is one server block.
type vserver struct {
	ports     []int
	names     []string
	root      string
	locations []location
}

// parsed is the effective configuration.
type parsed struct {
	sawEvents bool
	servers   []vserver
}

// check parses and validates a configuration without touching listener
// state, returning the effective server blocks and the unique ports to
// bind in configuration order. Errors carry nginx's startup wording.
func (s *Server) check(files suts.Files) ([]vserver, []int, error) {
	data, ok := files[ConfigFile]
	if !ok {
		return nil, nil, &suts.StartupError{System: s.Name(), Msg: "missing " + ConfigFile}
	}
	cfg, err := parseConfig(string(data))
	if err != nil {
		return nil, nil, &suts.StartupError{System: s.Name(), Msg: err.Error()}
	}
	if !cfg.sawEvents {
		return nil, nil, &suts.StartupError{System: s.Name(), Msg: `no "events" section in configuration`}
	}

	// One listener per unique port; the first server block naming a port
	// is its default server, later ones are name-based virtual hosts.
	// Dedup by linear scan: the port list is a handful of entries and this
	// runs once per experiment, so a map would cost more than it saves.
	var ports []int
	for si := range cfg.servers {
		sv := &cfg.servers[si]
		if len(sv.ports) == 0 {
			// A server block without listen falls back to a default port.
			// Real nginx uses :80, but binding a fixed privileged port
			// would make the outcome depend on the environment (root vs
			// not) and on which concurrent worker wins the bind race; the
			// instance's own default port keeps the omit-listen fault
			// deterministic at any worker width — the server silently
			// joins the default port's virtual hosts, a latent
			// misconfiguration only the per-host functional tests see.
			sv.ports = []int{s.port}
		}
		for _, p := range sv.ports {
			if !slices.Contains(ports, p) {
				ports = append(ports, p)
			}
		}
	}
	return cfg.servers, ports, nil
}

// Start implements suts.System.
func (s *Server) Start(files suts.Files) error { return s.configure(files) }

// Reload implements suts.Reloader: it applies a new configuration to the
// running server the way `nginx -s reload` does — configuration errors
// are rejected with Start's exact wording while the previous
// configuration keeps serving; ports shared between old and new
// configuration keep their listener (and established keep-alive
// connections), only the routing tables are swapped.
func (s *Server) Reload(files suts.Files) error { return s.configure(files) }

// ReloadDirty implements suts.DirtyReloader: when nginx.conf is not in
// the dirty set its bytes are the campaign baseline, so the memoized
// baseline parse is applied without re-parsing. Observationally
// identical to Reload — apply still runs in full, because the running
// configuration may be the previous experiment's mutation.
func (s *Server) ReloadDirty(files suts.Files, dirty []string) error {
	data, ok := files[ConfigFile]
	if ok && !slices.Contains(dirty, ConfigFile) {
		if cc, hit := s.baseMemo.Get(data); hit {
			return s.apply(cc.servers, cc.ports)
		}
		servers, ports, err := s.check(files)
		if err != nil {
			return err
		}
		s.baseMemo.Put(data, checkedConfig{servers: servers, ports: ports})
		return s.apply(servers, ports)
	}
	return s.configure(files)
}

// Validate implements suts.Validator: the `nginx -t` parse-and-check
// path. It detects exactly Start's configuration rejections; bind-time
// failures are invisible to it.
func (s *Server) Validate(files suts.Files) error {
	_, _, err := s.check(files)
	return err
}

// configure drives the server to the given configuration from whatever
// is currently bound — everything for a cold start, nothing on a no-op
// reload. On error the previous state is untouched (empty for a cold
// start), so a rejected reload keeps serving the old configuration.
func (s *Server) configure(files suts.Files) error {
	servers, ports, err := s.check(files)
	if err != nil {
		return err
	}
	return s.apply(servers, ports)
}

// apply drives the listener and routing state to a checked
// configuration.
func (s *Server) apply(servers []vserver, ports []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Bind the ports the new configuration adds, in configuration order
	// so a multi-failure reports the same port a cold start would.
	created := map[int]*binding{}
	for _, port := range ports {
		if _, held := s.bound[port]; held {
			continue
		}
		ln, err := s.transport().Listen(fmt.Sprintf("127.0.0.1:%d", port))
		if err != nil {
			for _, b := range created {
				_ = b.ln.Close()
				b.ps.Close()
			}
			return &suts.StartupError{System: s.Name(),
				Msg: fmt.Sprintf("bind() to 127.0.0.1:%d failed: %v", port, err)}
		}
		ps := httpprobe.NewServer("nginx-sim/1.0", nil)
		created[port] = &binding{ln: ln, ps: ps}
		s.wg.Add(1)
		go func(ps *httpprobe.Server, l net.Listener) {
			defer s.wg.Done()
			ps.Serve(l)
		}(ps, ln)
	}

	// Commit: adopt the new bindings, retarget every retained port's
	// handler, drop ports the new configuration no longer listens on.
	want := map[int]bool{}
	for _, p := range ports {
		want[p] = true
	}
	if s.bound == nil {
		s.bound = map[int]*binding{}
	}
	for p, b := range created {
		s.bound[p] = b
	}
	for p, b := range s.bound {
		if !want[p] {
			_ = b.ln.Close()
			b.ps.Close()
			delete(s.bound, p)
			continue
		}
		b.ps.SetHandler(handlerFor(servers, p))
	}
	s.order = ports
	return nil
}

// handlerFor builds the request handler of one listening port: match the
// Host header against the server_names of the servers on that port
// (falling back to the port's first server), then the longest location
// prefix, and answer with markers that let functional tests tell exactly
// which server and location produced the response. The per-request path
// works on the connection's byte slices and allocates nothing.
func handlerFor(servers []vserver, port int) httpprobe.Handler {
	var onPort []vserver
	for _, sv := range servers {
		for _, p := range sv.ports {
			if p == port {
				onPort = append(onPort, sv)
				break
			}
		}
	}
	return func(dst []byte, path, host []byte) ([]byte, int) {
		if i := bytes.LastIndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		srv := onPort[0]
		for _, cand := range onPort {
			if matchesName(cand.names, host) {
				srv = cand
				break
			}
		}
		root, loc := srv.root, ""
		best := -1
		for _, l := range srv.locations {
			if httpprobe.HasPrefix(path, l.prefix) && len(l.prefix) > best {
				best = len(l.prefix)
				loc = l.prefix
				if l.root != "" {
					root = l.root
				}
			}
		}
		name := ""
		if len(srv.names) > 0 {
			name = srv.names[0]
		}
		return renderBody(dst, name, loc, root), 200
	}
}

// renderBody appends the response body — the same bytes the net/http
// handler's Fprintf produced, shared by the serving path and the
// contract tests so the two probe paths cannot drift.
func renderBody(dst []byte, name, loc, root string) []byte {
	dst = append(dst, "<html><body><h1>Welcome to nginx-sim!</h1><p>server="...)
	dst = append(dst, name...)
	dst = append(dst, "</p><p>location="...)
	dst = append(dst, loc...)
	dst = append(dst, "</p><p>root="...)
	dst = append(dst, root...)
	return append(dst, "</p></body></html>\n"...)
}

// matchesName compares a request host against a server's server_names,
// case-insensitively (configuration names and probe hosts are ASCII).
func matchesName(names []string, host []byte) bool {
	for _, n := range names {
		if httpprobe.EqualFold(host, n) {
			return true
		}
	}
	return false
}

// Stop implements suts.System.
func (s *Server) Stop() error {
	s.mu.Lock()
	bound := s.bound
	s.bound = nil
	s.order = nil
	s.mu.Unlock()
	for _, b := range bound {
		_ = b.ln.Close()
		b.ps.Close()
	}
	s.wg.Wait()
	return nil
}

// Health implements suts.HealthChecker: a running server has at least
// one bound listener.
func (s *Server) Health() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.bound) == 0 {
		return fmt.Errorf("nginx-sim: no listeners bound")
	}
	return nil
}

// SetTransport implements suts.TransportSetter. Must be called before
// Start; it moves both the listeners and the functional tests' dials.
func (s *Server) SetTransport(t suts.Transport) { s.tr = t }

// transport returns the configured transport, defaulting to TCP.
func (s *Server) transport() suts.Transport {
	if s.tr == nil {
		return suts.TCPTransport{}
	}
	return s.tr
}

// Addr implements suts.Addressable (first configured port's listener).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.order {
		if b, ok := s.bound[p]; ok {
			return b.ln.Addr().String()
		}
	}
	return ""
}

// parseConfig applies nginx's startup semantics to the configuration
// text: brace-block syntax, directive lookup, context checking and
// argument validation, erroring with nginx's wording.
func parseConfig(conf string) (parsed, error) {
	var cfg parsed
	type frame struct {
		ctx context
		tag string
		srv *vserver
		loc *location
	}
	stack := []frame{{ctx: ctxMain}}
	// Lines are walked with IndexByte and directives split into a reused
	// args buffer: parseConfig runs once per experiment on the reload and
	// validate paths, and the strings.Split/Fields slices it used to
	// build dominated its allocation profile. The retained strings
	// (server names, roots, location prefixes) are substrings of conf, so
	// dropping the intermediate slices changes nothing downstream.
	var argsBuf []string
	lineno := 0
	for start := 0; start <= len(conf); {
		var line string
		if nl := strings.IndexByte(conf[start:], '\n'); nl >= 0 {
			line = conf[start : start+nl]
			start += nl + 1
		} else {
			line = conf[start:]
			start = len(conf) + 1
		}
		lineno++
		t := strings.TrimSpace(line)
		t = stripComment(t)
		if t == "" {
			continue
		}
		switch {
		case t == "}":
			if len(stack) == 1 {
				return cfg, fmt.Errorf(`unexpected "}" in %s:%d`, ConfigFile, lineno)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.loc != nil {
				// A closing location attaches to its enclosing server
				// (nested locations flatten onto the server, prefix
				// matching makes the nesting irrelevant at serve time).
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].srv != nil {
						stack[i].srv.locations = append(stack[i].srv.locations, *top.loc)
						break
					}
				}
			}
		case strings.HasSuffix(t, "{"):
			name, args := splitDirectiveInto(trimTrailingBlank(t[:len(t)-1]), argsBuf)
			argsBuf = args[:0]
			def := lookupDirective(name)
			if def == nil {
				return cfg, fmt.Errorf("unknown directive %q in %s:%d", name, ConfigFile, lineno)
			}
			if def.kind != argBlock {
				return cfg, fmt.Errorf("directive %q has no opening \"{\" form in %s:%d", name, ConfigFile, lineno)
			}
			cur := stack[len(stack)-1].ctx
			if def.contexts&cur == 0 {
				return cfg, fmt.Errorf("%q directive is not allowed here in %s:%d", name, ConfigFile, lineno)
			}
			if _, err := checkArgs(def, args); err != nil {
				return cfg, fmt.Errorf("%v in %s:%d", err, ConfigFile, lineno)
			}
			fr := frame{tag: name}
			switch name {
			case "events":
				fr.ctx = ctxEvents
				cfg.sawEvents = true
			case "http":
				fr.ctx = ctxHTTP
			case "server":
				fr.ctx = ctxServer
				cfg.servers = append(cfg.servers, vserver{})
				fr.srv = &cfg.servers[len(cfg.servers)-1]
			case "location":
				fr.ctx = ctxLocation
				fr.loc = &location{prefix: args[len(args)-1]}
			}
			stack = append(stack, fr)
		case strings.HasSuffix(t, ";"):
			name, args := splitDirectiveInto(trimTrailingBlank(t[:len(t)-1]), argsBuf)
			argsBuf = args[:0]
			def := lookupDirective(name)
			if def == nil {
				return cfg, fmt.Errorf("unknown directive %q in %s:%d", name, ConfigFile, lineno)
			}
			if def.kind == argBlock {
				return cfg, fmt.Errorf("directive %q has no terminating \";\" form in %s:%d", name, ConfigFile, lineno)
			}
			cur := stack[len(stack)-1].ctx
			if def.contexts&cur == 0 {
				return cfg, fmt.Errorf("%q directive is not allowed here in %s:%d", name, ConfigFile, lineno)
			}
			port, err := checkArgs(def, args)
			if err != nil {
				return cfg, fmt.Errorf("%v in %s:%d", err, ConfigFile, lineno)
			}
			top := stack[len(stack)-1]
			switch name {
			case "listen":
				for _, p := range top.srv.ports {
					if p == port {
						return cfg, fmt.Errorf("duplicate listen options for 127.0.0.1:%d in %s:%d", port, ConfigFile, lineno)
					}
				}
				top.srv.ports = append(top.srv.ports, port)
			case "server_name":
				top.srv.names = append(top.srv.names, args...)
			case "root":
				if top.loc != nil {
					top.loc.root = args[0]
				} else if top.srv != nil {
					top.srv.root = args[0]
				}
			}
		default:
			name, _ := splitDirectiveInto(t, argsBuf)
			return cfg, fmt.Errorf("directive %q is not terminated by \";\" in %s:%d", name, ConfigFile, lineno)
		}
	}
	if len(stack) != 1 {
		return cfg, fmt.Errorf(`unexpected end of file, expecting "}" in %s`, ConfigFile)
	}
	return cfg, nil
}

// splitDirectiveInto splits "name arg arg…" on whitespace, appending the
// args into buf (reset to length zero) so the parse loop reuses one
// backing array for every line. The returned args slice aliases buf's
// array; callers copy out what they keep. Splitting matches
// strings.Fields: any ASCII whitespace separates, with a fallback to
// Fields itself for the non-ASCII space runes it also recognizes.
func splitDirectiveInto(s string, buf []string) (name string, args []string) {
	buf = buf[:0]
	first := true
	for i := 0; i < len(s); {
		if s[i] >= utf8.RuneSelf {
			// Rare: a mutation introduced a non-ASCII byte. Defer to
			// strings.Fields so multi-byte space runes split identically.
			fields := strings.Fields(s)
			if len(fields) == 0 {
				return "", buf[:0]
			}
			return fields[0], append(buf[:0], fields[1:]...)
		}
		if asciiSpace[s[i]] {
			i++
			continue
		}
		j := i + 1
		for j < len(s) && s[j] < utf8.RuneSelf && !asciiSpace[s[j]] {
			j++
		}
		if j < len(s) && s[j] >= utf8.RuneSelf {
			fields := strings.Fields(s)
			if len(fields) == 0 {
				return "", buf[:0]
			}
			return fields[0], append(buf[:0], fields[1:]...)
		}
		if first {
			name, first = s[i:j], false
		} else {
			buf = append(buf, s[i:j])
		}
		i = j
	}
	return name, buf
}

// asciiSpace marks the ASCII bytes unicode.IsSpace reports as space —
// the set strings.Fields separates on for ASCII input.
var asciiSpace = [256]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// stripComment removes a trailing '#' comment from an already-trimmed
// line (a '#' opens a comment anywhere outside nginx's quoting, which
// the simulator does not model beyond single-quoted log formats). The
// IndexByte guard skips the quote-tracking scan on the comment-free
// lines that dominate real configurations.
func stripComment(t string) string {
	if strings.IndexByte(t, '#') < 0 {
		return t
	}
	inQuote := false
	for i := 0; i < len(t); i++ {
		switch t[i] {
		case '\'':
			inQuote = !inQuote
		case '#':
			if !inQuote {
				return trimTrailingBlank(t[:i])
			}
		}
	}
	return t
}

// trimTrailingBlank is strings.TrimRight(s, " \t") without the per-call
// cutset construction.
func trimTrailingBlank(s string) string {
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// httpClient returns the server's shared functional-test client. Its
// dials go through the configured transport (read at dial time, so
// SetTransport may come after Tests is built), and its keep-alive pool
// lets warm-reload experiments reuse connections to retained listeners.
func (s *Server) httpClient() *http.Client {
	s.clientOnce.Do(func() {
		s.client = &http.Client{
			Timeout: 5 * time.Second,
			Transport: &http.Transport{
				DialContext: func(ctx stdcontext.Context, network, addr string) (net.Conn, error) {
					return s.transport().Dial(addr)
				},
				MaxIdleConnsPerHost: 4,
			},
		}
	})
	return s.client
}

// Tests returns the web-server diagnosis, the paper-style functional
// checks an administrator would run: a plain GET against the default
// server, a virtual-host GET that must be answered by the blog server,
// and a GET under /static/ that must be served from the static location.
//
// The probes run on the httpprobe fast path: requests are prebuilt once
// (on first use, after SetTransport has been applied), the connection
// stays warm across experiments, and a successful probe allocates
// nothing. Outcomes and error wording are byte-identical to
// ReferenceTests — the facade's contract test holds both paths to that.
func Tests(s *Server) []suts.Test {
	var (
		once                     sync.Once
		client                   *httpprobe.Client
		pDefault, pBlog, pStatic *httpprobe.Probe
	)
	setup := func() {
		client = httpprobe.NewClient(func(addr string) (net.Conn, error) {
			return s.transport().Dial(addr)
		}, 5*time.Second)
		addr := fmt.Sprintf("127.0.0.1:%d", s.DefaultPort())
		pDefault = httpprobe.NewProbe(addr, "/", "")
		pBlog = httpprobe.NewProbe(addr, "/", "blog.example.com")
		pStatic = httpprobe.NewProbe(addr, "/static/logo.png", "")
	}
	// get takes a pointer to the probe variable: the probes are built
	// lazily (inside once.Do, so SetTransport has happened) and the Run
	// closures are created before that.
	get := func(pp **httpprobe.Probe) ([]byte, error) {
		once.Do(setup)
		status, body, err := client.Do(*pp)
		if err != nil {
			return nil, fmt.Errorf("GET: %w", err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("status %d", status)
		}
		return body, nil
	}
	return []suts.Test{
		{
			Name: "http-get",
			Run: func() error {
				body, err := get(&pDefault)
				if err != nil {
					return err
				}
				if !bytes.Contains(body, []byte("root=/var/www/html")) {
					return fmt.Errorf("default server did not serve the html root: %q", body)
				}
				return nil
			},
		},
		{
			Name: "vhost-blog",
			Run: func() error {
				body, err := get(&pBlog)
				if err != nil {
					return err
				}
				if !bytes.Contains(body, []byte("server=blog.example.com")) {
					return fmt.Errorf("blog virtual host not answering: %q", body)
				}
				return nil
			},
		},
		{
			Name: "static-location",
			Run: func() error {
				body, err := get(&pStatic)
				if err != nil {
					return err
				}
				if !bytes.Contains(body, []byte("root=/var/www/static")) {
					return fmt.Errorf("static location not matched: %q", body)
				}
				return nil
			},
		},
	}
}

// ReferenceTests is the pre-fast-path probe implementation on the stock
// net/http client, kept verbatim as the fidelity reference: the
// contract test runs every configuration through both paths and
// requires identical outcomes and error wording.
func ReferenceTests(s *Server) []suts.Test {
	get := func(path, host string) (string, error) {
		client := s.httpClient()
		req, err := http.NewRequest("GET", fmt.Sprintf("http://127.0.0.1:%d%s", s.DefaultPort(), path), nil)
		if err != nil {
			return "", err
		}
		if host != "" {
			req.Host = host
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", fmt.Errorf("GET: %w", err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		return string(body), nil
	}
	return []suts.Test{
		{
			Name: "http-get",
			Run: func() error {
				body, err := get("/", "")
				if err != nil {
					return err
				}
				if !strings.Contains(body, "root=/var/www/html") {
					return fmt.Errorf("default server did not serve the html root: %q", body)
				}
				return nil
			},
		},
		{
			Name: "vhost-blog",
			Run: func() error {
				body, err := get("/", "blog.example.com")
				if err != nil {
					return err
				}
				if !strings.Contains(body, "server=blog.example.com") {
					return fmt.Errorf("blog virtual host not answering: %q", body)
				}
				return nil
			},
		},
		{
			Name: "static-location",
			Run: func() error {
				body, err := get("/static/logo.png", "")
				if err != nil {
					return err
				}
				if !strings.Contains(body, "root=/var/www/static") {
					return fmt.Errorf("static location not matched: %q", body)
				}
				return nil
			},
		},
	}
}
