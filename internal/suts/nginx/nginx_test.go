package nginx

import (
	"strings"
	"testing"

	"conferr/internal/suts"
)

// start brings up a server on a fresh port and registers cleanup.
func start(t *testing.T, mutate func(string) string) *Server {
	t.Helper()
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	files := s.DefaultConfig()
	if mutate != nil {
		files = suts.Files{ConfigFile: []byte(mutate(string(files[ConfigFile])))}
	}
	if err := s.Start(files); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = s.Stop() })
	return s
}

func TestDefaultConfigStartsAndPassesTests(t *testing.T) {
	s := start(t, nil)
	for _, test := range Tests(s) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test %s: %v", test.Name, err)
		}
	}
}

func TestRestartable(t *testing.T) {
	s := start(t, nil)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(s.DefaultConfig()); err != nil {
		t.Fatalf("second Start: %v", err)
	}
}

// startErr starts the default configuration with one textual mutation and
// expects a startup rejection containing want.
func startErr(t *testing.T, want string, mutate func(string) string) {
	t.Helper()
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	files := s.DefaultConfig()
	conf := mutate(string(files[ConfigFile]))
	err = s.Start(suts.Files{ConfigFile: []byte(conf)})
	defer func() { _ = s.Stop() }()
	if err == nil {
		t.Fatalf("Start accepted mutated config (want %q)", want)
	}
	if !suts.IsStartupError(err) {
		t.Fatalf("err = %v, want StartupError", err)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("err = %q, want substring %q", err, want)
	}
}

func TestStartupValidation(t *testing.T) {
	repl := func(old, new string) func(string) string {
		return func(conf string) string { return strings.Replace(conf, old, new, 1) }
	}
	t.Run("unknown directive", func(t *testing.T) {
		startErr(t, `unknown directive "snedfile"`, repl("sendfile on;", "snedfile on;"))
	})
	t.Run("context violation", func(t *testing.T) {
		startErr(t, `"listen" directive is not allowed here`, repl("worker_processes auto;", "listen 8080;"))
	})
	t.Run("missing semicolon", func(t *testing.T) {
		startErr(t, `not terminated by ";"`, repl("gzip on;", "gzip on"))
	})
	t.Run("bad flag value", func(t *testing.T) {
		startErr(t, `it must be "on" or "off"`, repl("gzip on;", "gzip yes;"))
	})
	t.Run("bad number", func(t *testing.T) {
		startErr(t, "invalid number", repl("worker_connections 1024;", "worker_connections many;")) //nolint
	})
	t.Run("arg count", func(t *testing.T) {
		startErr(t, "invalid number of arguments", repl("tcp_nopush on;", "tcp_nopush on extra;"))
	})
	t.Run("missing events", func(t *testing.T) {
		startErr(t, `no "events" section`, func(conf string) string {
			i := strings.Index(conf, "events {")
			j := strings.Index(conf, "}")
			return conf[:i] + conf[j+2:]
		})
	})
	t.Run("unexpected close", func(t *testing.T) {
		startErr(t, `unexpected "}"`, repl("user nginx;", "}"))
	})
	t.Run("unclosed block", func(t *testing.T) {
		startErr(t, "unexpected end of file", func(conf string) string {
			return strings.TrimSuffix(strings.TrimRight(conf, "\n"), "}") // drop the final closing brace
		})
	})
	t.Run("invalid port", func(t *testing.T) {
		startErr(t, `invalid port in "8x080" of the "listen" directive`, func(conf string) string {
			return strings.Replace(conf, "listen ", "listen 8x080; #", 1)
		})
	})
	t.Run("duplicate listen", func(t *testing.T) {
		startErr(t, "duplicate listen options", repl("server_name www.example.com;",
			"listen 8081;\n        listen 8081;"))
	})
}

// TestOmitListenFallsBackToDefaultPort: a server block without listen
// must deterministically join the instance's default port (never a fixed
// real port like :80, whose bindability depends on the environment) — the
// server stays up, and only the per-host functional tests can tell the
// hosts were collapsed onto one listener.
func TestOmitListenFallsBackToDefaultPort(t *testing.T) {
	s := start(t, func(conf string) string {
		i := strings.Index(conf, "listen ")
		j := strings.Index(conf[i:], ";")
		return conf[:i] + conf[i+j+2:] // drop the www server's listen line
	})
	for _, test := range Tests(s) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test %s after omit-listen: %v", test.Name, err)
		}
	}
}

// TestVhostMisrouting models the paper's latent-error scenario: removing
// a virtual host's server_name leaves the server up but silently routes
// the blog's requests to the default server — only the vhost functional
// test notices.
func TestVhostMisrouting(t *testing.T) {
	s := start(t, func(conf string) string {
		return strings.Replace(conf, "server_name blog.example.com;", "", 1)
	})
	var vhost suts.Test
	for _, test := range Tests(s) {
		if test.Name == "vhost-blog" {
			vhost = test
		} else if err := test.Run(); err != nil {
			t.Errorf("unrelated test %s must still pass: %v", test.Name, err)
		}
	}
	if err := vhost.Run(); err == nil {
		t.Error("vhost-blog passed although the blog server has no server_name")
	}
}

func TestMissingConfigFile(t *testing.T) {
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Start(suts.Files{})
	defer func() { _ = s.Stop() }()
	if err == nil || !suts.IsStartupError(err) {
		t.Fatalf("Start without config: %v", err)
	}
}
