package nginx

import (
	"fmt"
	"strconv"
	"strings"
)

// context is the configuration block a directive appears in.
type context int

const (
	ctxMain context = 1 << iota
	ctxEvents
	ctxHTTP
	ctxServer
	ctxLocation
)

// argKind selects the argument validation a directive gets, mirroring
// nginx's ngx_conf_set_*_slot handler families.
type argKind int

const (
	// argAny accepts any argument text.
	argAny argKind = iota
	// argFlag accepts exactly "on" or "off".
	argFlag
	// argNum accepts a non-negative decimal integer.
	argNum
	// argNumOrAuto accepts argNum or the literal "auto".
	argNumOrAuto
	// argSize accepts a number with an optional k/m/g suffix.
	argSize
	// argTime accepts a number with an optional ms/s/m/h/d suffix.
	argTime
	// argListen accepts "port", "address:port" or "*:port".
	argListen
	// argBlock marks a block directive ("http { … }").
	argBlock
)

// directive is one entry of the simulator's directive table.
type directive struct {
	name     string
	contexts context
	min, max int // argument count range; max -1 means unbounded
	kind     argKind
}

// directiveTable models the subset of nginx's module directives the
// stock nginx.conf uses, with their real context and argument-count
// constraints. Lookup is case-sensitive, as in nginx.
var directiveTable = []directive{
	// Core (main context).
	{"user", ctxMain, 1, 2, argAny},
	{"worker_processes", ctxMain, 1, 1, argNumOrAuto},
	{"worker_rlimit_nofile", ctxMain, 1, 1, argNum},
	{"pid", ctxMain, 1, 1, argAny},
	{"error_log", ctxMain | ctxHTTP | ctxServer, 1, 2, argAny},

	// Blocks.
	{"events", ctxMain, 0, 0, argBlock},
	{"http", ctxMain, 0, 0, argBlock},
	{"server", ctxHTTP, 0, 0, argBlock},
	{"location", ctxServer | ctxLocation, 1, 2, argBlock},

	// Events.
	{"worker_connections", ctxEvents, 1, 1, argNum},
	{"multi_accept", ctxEvents, 1, 1, argFlag},
	{"use", ctxEvents, 1, 1, argAny},

	// HTTP.
	{"include", ctxHTTP, 1, 1, argAny},
	{"default_type", ctxHTTP, 1, 1, argAny},
	{"log_format", ctxHTTP, 2, -1, argAny},
	{"access_log", ctxHTTP | ctxServer | ctxLocation, 1, 2, argAny},
	{"sendfile", ctxHTTP | ctxServer | ctxLocation, 1, 1, argFlag},
	{"tcp_nopush", ctxHTTP, 1, 1, argFlag},
	{"tcp_nodelay", ctxHTTP, 1, 1, argFlag},
	{"keepalive_timeout", ctxHTTP | ctxServer, 1, 2, argTime},
	{"types_hash_max_size", ctxHTTP, 1, 1, argNum},
	{"client_max_body_size", ctxHTTP | ctxServer | ctxLocation, 1, 1, argSize},
	{"gzip", ctxHTTP | ctxServer | ctxLocation, 1, 1, argFlag},
	{"server_tokens", ctxHTTP | ctxServer | ctxLocation, 1, 1, argFlag},
	{"root", ctxHTTP | ctxServer | ctxLocation, 1, 1, argAny},
	{"index", ctxHTTP | ctxServer | ctxLocation, 1, -1, argAny},

	// Server.
	{"listen", ctxServer, 1, 2, argListen},
	{"server_name", ctxServer, 1, -1, argAny},
	{"error_page", ctxServer | ctxLocation, 2, -1, argAny},
	{"return", ctxServer | ctxLocation, 1, 2, argAny},

	// Location.
	{"try_files", ctxLocation, 2, -1, argAny},
	{"autoindex", ctxHTTP | ctxServer | ctxLocation, 1, 1, argFlag},
	{"expires", ctxHTTP | ctxServer | ctxLocation, 1, 1, argAny},
	{"proxy_pass", ctxLocation, 1, 1, argAny},
}

// lookupDirective returns the table entry for name, or nil.
func lookupDirective(name string) *directive {
	for i := range directiveTable {
		if directiveTable[i].name == name {
			return &directiveTable[i]
		}
	}
	return nil
}

// checkArgs validates argument count and per-kind argument syntax,
// wording errors the way nginx's config module does. For argListen it
// also returns the parsed port.
func checkArgs(def *directive, args []string) (int, error) {
	if len(args) < def.min || (def.max >= 0 && len(args) > def.max) {
		return 0, fmt.Errorf("invalid number of arguments in %q directive", def.name)
	}
	if len(args) == 0 {
		return 0, nil
	}
	switch def.kind {
	case argFlag:
		if args[0] != "on" && args[0] != "off" {
			return 0, fmt.Errorf("invalid value %q in %q directive, it must be \"on\" or \"off\"", args[0], def.name)
		}
	case argNum:
		if _, err := strconv.Atoi(args[0]); err != nil || strings.HasPrefix(args[0], "-") {
			return 0, fmt.Errorf("invalid number %q in %q directive", args[0], def.name)
		}
	case argNumOrAuto:
		if args[0] == "auto" {
			break
		}
		if _, err := strconv.Atoi(args[0]); err != nil || strings.HasPrefix(args[0], "-") {
			return 0, fmt.Errorf("invalid number %q in %q directive", args[0], def.name)
		}
	case argSize:
		if !validSuffixedNumber(args[0], []string{"k", "K", "m", "M", "g", "G"}) {
			return 0, fmt.Errorf("%q directive invalid value", def.name)
		}
	case argTime:
		if !validSuffixedNumber(args[0], []string{"ms", "s", "m", "h", "d"}) {
			return 0, fmt.Errorf("%q directive invalid value", def.name)
		}
	case argListen:
		return parseListen(args[0])
	}
	return 0, nil
}

// validSuffixedNumber reports whether s is a non-negative integer with an
// optional suffix from the given set.
func validSuffixedNumber(s string, suffixes []string) bool {
	for _, suf := range suffixes {
		if len(s) > len(suf) && strings.HasSuffix(s, suf) {
			s = s[:len(s)-len(suf)]
			break
		}
	}
	n, err := strconv.Atoi(s)
	return err == nil && n >= 0
}

// parseListen extracts the port from a listen argument: "8080",
// "127.0.0.1:8080" or "*:8080".
func parseListen(arg string) (int, error) {
	portText := arg
	if i := strings.LastIndexByte(arg, ':'); i >= 0 {
		portText = arg[i+1:]
		host := arg[:i]
		switch host {
		case "", "*", "0.0.0.0", "127.0.0.1", "localhost":
		default:
			return 0, fmt.Errorf("host not found in %q of the \"listen\" directive", arg)
		}
	}
	port, err := strconv.Atoi(portText)
	if err != nil || port < 1 || port > 65535 {
		return 0, fmt.Errorf("invalid port in %q of the \"listen\" directive", arg)
	}
	return port, nil
}
