// Package bind simulates the ISC BIND 9.4 name server for ConfErr
// campaigns. It serves real DNS over UDP (via internal/dnswire) and
// reproduces the zone-loading behaviour the paper's Table 3 rests on
// (§5.4):
//
//   - a name that has both a CNAME and other data refuses the zone
//     ("CNAME and other data") — error (3) is found;
//   - an MX or NS record whose target is a CNAME refuses the zone
//     ("... is a CNAME (illegal)") — error (4) is found;
//   - a missing PTR or a PTR pointing at an alias is NOT checked (the
//     consistency is cross-zone) — errors (1) and (2) are not found;
//   - a zone without an SOA record is refused.
package bind

import (
	"fmt"
	"regexp"
	"strings"

	"conferr/internal/dnsmodel"
	"conferr/internal/dnswire"
	"conferr/internal/suts"
)

// File names in the simulator's configuration set.
const (
	// ConfigFile is the main configuration (named.conf).
	ConfigFile = "named.conf"
	// ForwardZoneFile is the example.com zone.
	ForwardZoneFile = "example.zone"
	// ReverseZoneFile is the 2.0.192.in-addr.arpa zone.
	ReverseZoneFile = "reverse.zone"
)

// Server is the simulated BIND name server.
type Server struct {
	port int

	srv   *dnswire.Server
	zones map[string][]dnsmodel.Record
}

var _ suts.System = (*Server)(nil)
var _ suts.Addressable = (*Server)(nil)

// New returns a simulator whose default configuration listens on the given
// UDP port (0 picks a free one at construction time).
func New(port int) (*Server, error) {
	if port == 0 {
		probe := dnswire.NewServer(func(dnswire.Question) ([]dnswire.RR, []dnswire.RR, dnswire.RCode) {
			return nil, nil, dnswire.RCodeNoError
		})
		if err := probe.Listen("127.0.0.1:0"); err != nil {
			return nil, fmt.Errorf("bind: allocating port: %w", err)
		}
		addr := probe.Addr()
		if err := probe.Close(); err != nil {
			return nil, fmt.Errorf("bind: releasing probe: %w", err)
		}
		if _, err := fmt.Sscanf(addr[strings.LastIndexByte(addr, ':')+1:], "%d", &port); err != nil {
			return nil, fmt.Errorf("bind: parsing probe addr %q: %w", addr, err)
		}
	}
	return &Server{port: port}, nil
}

// Name implements suts.System.
func (s *Server) Name() string { return "bind-sim" }

// DefaultPort returns the port of the default configuration.
func (s *Server) DefaultPort() int { return s.port }

// Origins maps the default zone files to their origins, as needed by
// dnsmodel.ZoneRecordView.
func Origins() map[string]string {
	return map[string]string{
		ForwardZoneFile: "example.com",
		ReverseZoneFile: "2.0.192.in-addr.arpa",
	}
}

// DefaultConfig implements suts.System: named.conf plus a forward zone
// with hosts, mail exchangers, TXT, RP and HINFO records and aliases, and
// a reverse zone mapping the addresses back — the paper's §5.4 setup.
func (s *Server) DefaultConfig() suts.Files {
	named := fmt.Sprintf(`options {
    listen-on port %d { 127.0.0.1; };
    directory "/var/named";
};
zone "example.com" {
    type master;
    file "example.zone";
};
zone "2.0.192.in-addr.arpa" {
    type master;
    file "reverse.zone";
};
`, s.port)
	forward := `$TTL 3600
$ORIGIN example.com.
@	IN	SOA	ns1.example.com. hostmaster.example.com. 2008060101 3600 900 604800 86400
@	IN	NS	ns1.example.com.
ns1	IN	A	192.0.2.1
www	IN	A	192.0.2.10
mail	IN	A	192.0.2.20
ftp	IN	CNAME	www
webmail	IN	CNAME	mail
@	IN	MX	10 mail
@	IN	TXT	"v=spf1 mx -all"
www	IN	RP	hostmaster.example.com. txt.example.com.
www	IN	HINFO	"i386" "linux"
`
	reverse := `$TTL 3600
$ORIGIN 2.0.192.in-addr.arpa.
@	IN	SOA	ns1.example.com. hostmaster.example.com. 2008060101 3600 900 604800 86400
@	IN	NS	ns1.example.com.
1	IN	PTR	ns1.example.com.
10	IN	PTR	www.example.com.
20	IN	PTR	mail.example.com.
`
	return suts.Files{
		ConfigFile:      []byte(named),
		ForwardZoneFile: []byte(forward),
		ReverseZoneFile: []byte(reverse),
	}
}

var (
	listenRe = regexp.MustCompile(`listen-on\s+port\s+(\d+)`)
	zoneRe   = regexp.MustCompile(`zone\s+"([^"]+)"\s*\{[^}]*file\s+"([^"]+)"`)
)

// Start implements suts.System: parse named.conf, load and check every
// zone, then serve DNS over UDP.
func (s *Server) Start(files suts.Files) error {
	named, ok := files[ConfigFile]
	if !ok {
		return &suts.StartupError{System: s.Name(), Msg: "missing " + ConfigFile}
	}
	port := 53
	if m := listenRe.FindSubmatch(named); m != nil {
		if _, err := fmt.Sscanf(string(m[1]), "%d", &port); err != nil {
			return &suts.StartupError{System: s.Name(), Msg: "bad listen-on port"}
		}
	}
	zoneDefs := zoneRe.FindAllSubmatch(named, -1)
	if len(zoneDefs) == 0 {
		return &suts.StartupError{System: s.Name(), Msg: "no zones configured"}
	}

	zones := make(map[string][]dnsmodel.Record, len(zoneDefs))
	for _, zd := range zoneDefs {
		origin, file := string(zd[1]), string(zd[2])
		data, ok := files[file]
		if !ok {
			return &suts.StartupError{System: s.Name(),
				Msg: fmt.Sprintf("zone %s/IN: loading master file %s: file not found", origin, file)}
		}
		recs, err := dnsmodel.ParseZoneFile(file, data, origin)
		if err != nil {
			return &suts.StartupError{System: s.Name(),
				Msg: fmt.Sprintf("zone %s/IN: loading master file %s: %v", origin, file, err)}
		}
		if err := checkZone(origin, recs); err != nil {
			return &suts.StartupError{System: s.Name(),
				Msg: fmt.Sprintf("zone %s/IN: %v", origin, err)}
		}
		zones[dnsmodel.Canon(origin)] = recs
	}
	s.zones = zones

	srv := dnswire.NewServer(s.answer)
	if err := srv.Listen(fmt.Sprintf("127.0.0.1:%d", port)); err != nil {
		return &suts.StartupError{System: s.Name(), Msg: err.Error()}
	}
	s.srv = srv
	return nil
}

// checkZone applies BIND's zone sanity checks.
func checkZone(origin string, recs []dnsmodel.Record) error {
	hasSOA := false
	cnames := make(map[string]string) // owner -> target
	others := make(map[string]bool)   // owners with non-CNAME data
	for _, r := range recs {
		if r.Type == "SOA" && r.Owner == dnsmodel.Canon(origin) {
			hasSOA = true
		}
		if r.Type == "CNAME" {
			if prev, dup := cnames[r.Owner]; dup && prev != r.Data {
				return fmt.Errorf("multiple CNAME records for %s", r.Owner)
			}
			cnames[r.Owner] = r.Data
		} else {
			others[r.Owner] = true
		}
	}
	if !hasSOA {
		return fmt.Errorf("has no SOA record")
	}
	// Error (3): CNAME and other data for the same name.
	for owner := range cnames {
		if others[owner] {
			return fmt.Errorf("loading master file: %s: CNAME and other data", owner)
		}
	}
	// Error (4): MX/NS targets must not be aliases (within the zone).
	for _, r := range recs {
		switch r.Type {
		case "MX":
			fields := strings.Fields(r.Data)
			if len(fields) == 2 {
				if _, isAlias := cnames[fields[1]]; isAlias {
					return fmt.Errorf("%s/MX '%s' is a CNAME (illegal)", r.Owner, fields[1])
				}
			}
		case "NS":
			if _, isAlias := cnames[r.Data]; isAlias {
				return fmt.Errorf("%s/NS '%s' is a CNAME (illegal)", r.Owner, r.Data)
			}
		}
	}
	return nil
}

// answer resolves one question against the loaded zones, following one
// CNAME hop like an authoritative server.
func (s *Server) answer(q dnswire.Question) ([]dnswire.RR, []dnswire.RR, dnswire.RCode) {
	name := dnsmodel.Canon(q.Name)
	zone := s.findZone(name)
	if zone == "" {
		return nil, nil, dnswire.RCodeRefused
	}
	var answers []dnswire.RR
	nameExists := false
	for _, r := range s.zones[zone] {
		if r.Owner != name {
			continue
		}
		nameExists = true
		t, _ := dnswire.TypeFromString(r.Type)
		if q.Type == dnswire.TypeANY || t == q.Type {
			answers = append(answers, dnswire.RR{Name: r.Owner, Type: t, TTL: r.TTL, Data: r.Data})
		} else if r.Type == "CNAME" {
			// Return the alias and chase the target once.
			answers = append(answers, dnswire.RR{Name: r.Owner, Type: dnswire.TypeCNAME, TTL: r.TTL, Data: r.Data})
			for _, tr := range s.zones[zone] {
				tt, _ := dnswire.TypeFromString(tr.Type)
				if tr.Owner == r.Data && tt == q.Type {
					answers = append(answers, dnswire.RR{Name: tr.Owner, Type: tt, TTL: tr.TTL, Data: tr.Data})
				}
			}
		}
	}
	if len(answers) > 0 {
		return answers, nil, dnswire.RCodeNoError
	}
	if nameExists {
		return nil, s.soaOf(zone), dnswire.RCodeNoError
	}
	return nil, s.soaOf(zone), dnswire.RCodeNXDomain
}

// findZone returns the longest configured zone that is a suffix of name.
func (s *Server) findZone(name string) string {
	best := ""
	for zone := range s.zones {
		if name == zone || strings.HasSuffix(name, "."+zone) {
			if len(zone) > len(best) {
				best = zone
			}
		}
	}
	return best
}

func (s *Server) soaOf(zone string) []dnswire.RR {
	for _, r := range s.zones[zone] {
		if r.Type == "SOA" {
			return []dnswire.RR{{Name: r.Owner, Type: dnswire.TypeSOA, TTL: r.TTL, Data: r.Data}}
		}
	}
	return nil
}

// Stop implements suts.System.
func (s *Server) Stop() error {
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	s.srv = nil
	return err
}

// Addr implements suts.Addressable.
func (s *Server) Addr() string {
	if s.srv == nil {
		return ""
	}
	return s.srv.Addr()
}
