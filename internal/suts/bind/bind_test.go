package bind

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"conferr/internal/dnswire"
	"conferr/internal/suts"
	"conferr/internal/suts/dnscheck"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func defaultAddr(s *Server) string {
	return fmt.Sprintf("127.0.0.1:%d", s.DefaultPort())
}

func TestDefaultConfigStartsAndServes(t *testing.T) {
	s := newServer(t)
	if err := s.Start(s.DefaultConfig()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()

	for _, test := range dnscheck.ZoneLivenessTests(defaultAddr(s),
		[]string{"example.com", "2.0.192.in-addr.arpa"}) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test %s: %v", test.Name, err)
		}
	}

	// Forward A lookup.
	resp, err := dnswire.Query(defaultAddr(s), "www.example.com", dnswire.TypeA, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data != "192.0.2.10" {
		t.Errorf("A www = %+v", resp.Answers)
	}
	// Reverse PTR lookup.
	resp, err = dnswire.Query(defaultAddr(s), "10.2.0.192.in-addr.arpa", dnswire.TypePTR, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data != "www.example.com" {
		t.Errorf("PTR = %+v", resp.Answers)
	}
	// CNAME chased for A queries.
	resp, err = dnswire.Query(defaultAddr(s), "ftp.example.com", dnswire.TypeA, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 2 || resp.Answers[0].Type != dnswire.TypeCNAME || resp.Answers[1].Data != "192.0.2.10" {
		t.Errorf("CNAME chase = %+v", resp.Answers)
	}
	// NXDomain with SOA in authority.
	resp, err = dnswire.Query(defaultAddr(s), "nx.example.com", dnswire.TypeA, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain || len(resp.Authority) != 1 {
		t.Errorf("NXDomain = %+v", resp)
	}
	// Out-of-zone query refused.
	resp, err = dnswire.Query(defaultAddr(s), "other.org", dnswire.TypeA, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("out-of-zone rcode = %v", resp.RCode)
	}
}

// mutate returns the default config with one file's content replaced.
func mutate(s *Server, file, old, new string) suts.Files {
	files := s.DefaultConfig()
	files[file] = []byte(strings.Replace(string(files[file]), old, new, 1))
	return files
}

func TestFindingCNAMEAndOtherDataRefused(t *testing.T) {
	// Table 3 error (3): a CNAME whose owner also has NS data refuses the
	// zone — "found".
	s := newServer(t)
	files := s.DefaultConfig()
	files[ForwardZoneFile] = append(files[ForwardZoneFile],
		[]byte("@\tIN\tCNAME\twww.example.com.\n")...)
	err := s.Start(files)
	if err == nil {
		s.Stop()
		t.Fatal("CNAME and other data accepted")
	}
	if !strings.Contains(err.Error(), "CNAME and other data") {
		t.Errorf("err = %v", err)
	}
}

func TestFindingMXToCNAMERefused(t *testing.T) {
	// Table 3 error (4): MX pointing at an alias refuses the zone.
	s := newServer(t)
	files := mutate(s, ForwardZoneFile, "MX\t10 mail", "MX\t10 ftp")
	err := s.Start(files)
	if err == nil {
		s.Stop()
		t.Fatal("MX to CNAME accepted")
	}
	if !strings.Contains(err.Error(), "is a CNAME (illegal)") {
		t.Errorf("err = %v", err)
	}
}

func TestFindingNSToCNAMERefused(t *testing.T) {
	s := newServer(t)
	files := mutate(s, ForwardZoneFile, "NS\tns1.example.com.", "NS\tftp.example.com.")
	err := s.Start(files)
	if err == nil {
		s.Stop()
		t.Fatal("NS to CNAME accepted")
	}
}

func TestFindingMissingPTRNotDetected(t *testing.T) {
	// Table 3 error (1): BIND cannot know a PTR is missing — the zone
	// loads and the functional tests pass ("not found").
	s := newServer(t)
	files := mutate(s, ReverseZoneFile, "10\tIN\tPTR\twww.example.com.\n", "")
	if err := s.Start(files); err != nil {
		t.Fatalf("missing PTR detected at startup: %v", err)
	}
	defer s.Stop()
	for _, test := range dnscheck.ZoneLivenessTests(defaultAddr(s),
		[]string{"example.com", "2.0.192.in-addr.arpa"}) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test failed (should pass): %v", err)
		}
	}
}

func TestFindingPTRToCNAMENotDetected(t *testing.T) {
	// Table 3 error (2): a PTR retargeted to an alias loads fine.
	s := newServer(t)
	files := mutate(s, ReverseZoneFile, "10\tIN\tPTR\twww.example.com.", "10\tIN\tPTR\tftp.example.com.")
	if err := s.Start(files); err != nil {
		t.Fatalf("PTR to CNAME detected at startup: %v", err)
	}
	defer s.Stop()
	for _, test := range dnscheck.ZoneLivenessTests(defaultAddr(s),
		[]string{"example.com", "2.0.192.in-addr.arpa"}) {
		if err := test.Run(); err != nil {
			t.Errorf("functional test failed (should pass): %v", err)
		}
	}
}

func TestZoneWithoutSOARefused(t *testing.T) {
	s := newServer(t)
	files := mutate(s, ForwardZoneFile,
		"@\tIN\tSOA\tns1.example.com. hostmaster.example.com. 2008060101 3600 900 604800 86400\n", "")
	if err := s.Start(files); err == nil {
		s.Stop()
		t.Fatal("zone without SOA accepted")
	}
}

func TestUnparseableZoneRefused(t *testing.T) {
	s := newServer(t)
	files := s.DefaultConfig()
	files[ForwardZoneFile] = []byte("www IN BOGUS data\n")
	if err := s.Start(files); err == nil {
		s.Stop()
		t.Fatal("unparseable zone accepted")
	}
}

func TestMissingZoneFile(t *testing.T) {
	s := newServer(t)
	files := s.DefaultConfig()
	delete(files, ReverseZoneFile)
	if err := s.Start(files); err == nil {
		s.Stop()
		t.Fatal("missing zone file accepted")
	} else if !strings.Contains(err.Error(), "file not found") {
		t.Errorf("err = %v", err)
	}
}

func TestMissingNamedConf(t *testing.T) {
	s := newServer(t)
	if err := s.Start(suts.Files{}); err == nil {
		s.Stop()
		t.Fatal("missing named.conf accepted")
	}
}

func TestRestartable(t *testing.T) {
	s := newServer(t)
	for i := 0; i < 3; i++ {
		if err := s.Start(s.DefaultConfig()); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if err := s.Stop(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stop(); err != nil {
		t.Errorf("idle Stop: %v", err)
	}
	if s.Addr() != "" {
		t.Error("Addr after stop")
	}
}

func TestOrigins(t *testing.T) {
	o := Origins()
	if o[ForwardZoneFile] != "example.com" || o[ReverseZoneFile] != "2.0.192.in-addr.arpa" {
		t.Errorf("Origins = %v", o)
	}
}
