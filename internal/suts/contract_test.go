package suts_test

import (
	"errors"
	"sort"
	"testing"

	conferr "conferr"
	"conferr/internal/suts"
)

// This file pins the System contract for every SUT in the registry —
// the invariants the engine and the pooled lifecycle lean on. Each
// registered target must tolerate, on a single instance:
//
//   - Stop before any Start
//   - Stop after a failed Start
//   - double Stop
//   - a full restart (Start/Stop/Start/Stop)
//
// and, where the optional capabilities are implemented, Reload and
// Validate must report startup rejections byte-identically to Start.

// garbageConfig corrupts the first (sorted) default file so that any
// real parser rejects it; systems that happen to tolerate it just skip
// the rejection-specific assertions.
func garbageConfig(sys suts.System) suts.Files {
	def := sys.DefaultConfig()
	names := make([]string, 0, len(def))
	for name := range def {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make(suts.Files, len(def))
	for name, data := range def {
		files[name] = data
	}
	if len(names) > 0 {
		files[names[0]] = []byte("conferr contract-test garbage ::: {{{\n")
	}
	return files
}

func TestRegisteredSystemsHonorContract(t *testing.T) {
	names := conferr.RegisteredTargets()
	if len(names) == 0 {
		t.Fatal("no registered targets")
	}
	sawRejection := false
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			factory, err := conferr.LookupTarget(name)
			if err != nil {
				t.Fatal(err)
			}
			st, err := factory(0)
			if err != nil {
				t.Fatalf("building target: %v", err)
			}
			sys := st.System
			def := sys.DefaultConfig()
			if len(def) == 0 {
				t.Fatal("empty default config")
			}

			// Stop before any Start must be a safe no-op.
			if err := sys.Stop(); err != nil {
				t.Errorf("Stop before Start: %v", err)
			}

			// A failed Start must leave the instance stoppable and
			// restartable.
			bad := garbageConfig(sys)
			startErr := sys.Start(bad)
			if startErr != nil {
				if !suts.IsStartupError(startErr) {
					t.Errorf("Start(garbage) = %v, want *StartupError", startErr)
				}
				if err := sys.Stop(); err != nil {
					t.Errorf("Stop after failed Start: %v", err)
				}
			} else if err := sys.Stop(); err != nil {
				t.Errorf("Stop after Start(garbage): %v", err)
			}

			// Restart on the same instance, then double Stop.
			for round := 0; round < 2; round++ {
				if err := sys.Start(def); err != nil {
					t.Fatalf("Start(default) round %d: %v", round, err)
				}
				if err := sys.Stop(); err != nil {
					t.Fatalf("Stop round %d: %v", round, err)
				}
			}
			if err := sys.Stop(); err != nil {
				t.Errorf("double Stop: %v", err)
			}

			// Optional capabilities: rejections must be byte-identical
			// to Start's for the same files.
			if startErr != nil && suts.IsStartupError(startErr) {
				sawRejection = true
				if v, ok := sys.(suts.Validator); ok {
					verr := v.Validate(bad)
					if verr == nil || verr.Error() != startErr.Error() {
						t.Errorf("Validate(garbage) = %v, want Start's %v", verr, startErr)
					}
					if err := v.Validate(def); err != nil {
						t.Errorf("Validate(default) = %v, want nil", err)
					}
				}
				if r, ok := sys.(suts.Reloader); ok {
					if err := sys.Start(def); err != nil {
						t.Fatalf("Start before Reload: %v", err)
					}
					rerr := r.Reload(bad)
					if rerr == nil || rerr.Error() != startErr.Error() {
						t.Errorf("Reload(garbage) = %v, want Start's %v", rerr, startErr)
					}
					var se *suts.StartupError
					if errors.As(rerr, &se) {
						// A rejected reload keeps the instance warm on its
						// previous configuration.
						if hc, ok := sys.(suts.HealthChecker); ok {
							if err := hc.Health(); err != nil {
								t.Errorf("Health after rejected Reload: %v", err)
							}
						}
						if err := r.Reload(def); err != nil {
							t.Errorf("Reload(default) after rejection: %v", err)
						}
					}
					if err := sys.Stop(); err != nil {
						t.Errorf("Stop after Reload round: %v", err)
					}
				}
			}
		})
	}
	if !sawRejection {
		t.Error("no registered system rejected the garbage config — contract test lost its teeth")
	}
}
