package dnswire

import "testing"

func benchMessage() *Message {
	return &Message{
		ID:        1,
		Questions: []Question{{Name: "www.example.com", Type: TypeA}},
		Answers: []RR{
			{Name: "www.example.com", Type: TypeA, TTL: 3600, Data: "192.0.2.10"},
			{Name: "example.com", Type: TypeMX, TTL: 3600, Data: "10 mail.example.com"},
		},
	}
}

func BenchmarkEncode(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	wire, err := benchMessage().Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
