// Package dnswire implements a minimal subset of the DNS wire protocol
// (RFC 1035): message header, question and resource-record encoding and
// decoding for the record types the paper's zones use (A, NS, CNAME, SOA,
// PTR, MX, TXT, HINFO, RP), plus a UDP client and server used by the
// simulated BIND and djbdns targets and their functional tests.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Type is a DNS RR type code.
type Type uint16

// Supported RR types.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeHINFO Type = 13
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeRP    Type = 17
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME", TypeSOA: "SOA",
	TypePTR: "PTR", TypeHINFO: "HINFO", TypeMX: "MX", TypeTXT: "TXT",
	TypeRP: "RP", TypeANY: "ANY",
}

// String returns the mnemonic of the type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// TypeFromString resolves a mnemonic ("A", "MX", …) to a type code.
func TypeFromString(s string) (Type, bool) {
	for t, name := range typeNames {
		if strings.EqualFold(name, s) {
			return t, true
		}
	}
	return 0, false
}

// ClassIN is the only class the implementation supports.
const ClassIN uint16 = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes used by the simulators.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// Question is a DNS question section entry.
type Question struct {
	// Name is the queried domain name, dot-terminated or not; it is
	// normalized on encode.
	Name string
	// Type is the queried RR type.
	Type Type
}

// RR is a resource record. Data holds the presentation form of the RDATA:
// an IPv4 dotted quad for A, a domain name for NS/CNAME/PTR, "pref host"
// for MX, free text for TXT, "mbox txt" for RP, "cpu os" for HINFO, and
// "mname rname serial refresh retry expire minimum" for SOA.
type RR struct {
	// Name is the owner name.
	Name string
	// Type is the RR type.
	Type Type
	// TTL is the time to live in seconds.
	TTL uint32
	// Data is the RDATA in presentation form (see type comment).
	Data string
}

// Message is a DNS message.
type Message struct {
	// ID is the transaction ID.
	ID uint16
	// Response marks a response (QR bit).
	Response bool
	// Authoritative marks an authoritative answer (AA bit).
	Authoritative bool
	// RecursionDesired copies the RD bit.
	RecursionDesired bool
	// RCode is the response code.
	RCode RCode
	// Questions is the question section.
	Questions []Question
	// Answers is the answer section.
	Answers []RR
	// Authority is the authority section.
	Authority []RR
}

// Errors returned by the decoder.
var (
	// ErrTruncated means the packet ended before the advertised content.
	ErrTruncated = errors.New("dnswire: truncated message")
	// ErrBadName means a domain name was malformed.
	ErrBadName = errors.New("dnswire: malformed domain name")
)

// CanonicalName lower-cases a domain name and strips the trailing dot, the
// normalization used across the DNS model.
func CanonicalName(name string) string {
	return strings.TrimSuffix(strings.ToLower(name), ".")
}

// encodeName appends the wire form of a domain name (no compression).
func encodeName(buf []byte, name string) ([]byte, error) {
	name = CanonicalName(name)
	if name == "" {
		return append(buf, 0), nil
	}
	for _, label := range strings.Split(name, ".") {
		if label == "" || len(label) > 63 {
			return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// decodeName reads a (possibly compressed) domain name starting at off and
// returns it with the offset just past the name in the original stream.
func decodeName(msg []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	end := off
	for hops := 0; ; hops++ {
		if hops > 64 {
			return "", 0, fmt.Errorf("%w: compression loop", ErrBadName)
		}
		if off >= len(msg) {
			return "", 0, ErrTruncated
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			return strings.Join(labels, "."), end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncated
			}
			ptr := int(binary.BigEndian.Uint16(msg[off:off+2]) & 0x3FFF)
			if !jumped {
				end = off + 2
			}
			jumped = true
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label bits", ErrBadName)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrTruncated
			}
			labels = append(labels, string(msg[off+1:off+1+l]))
			off += 1 + l
		}
	}
}

// Encode serializes the message (no name compression; responses stay small
// enough for the simulators' zones).
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint16(buf[0:2], m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	flags |= uint16(m.RCode) & 0xF
	binary.BigEndian.PutUint16(buf[2:4], flags)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(buf[8:10], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(buf[10:12], 0)

	var err error
	for _, q := range m.Questions {
		buf, err = encodeName(buf, q.Name)
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, ClassIN)
	}
	for _, sec := range [][]RR{m.Answers, m.Authority} {
		for _, rr := range sec {
			buf, err = appendRR(buf, rr)
			if err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func appendRR(buf []byte, rr RR) ([]byte, error) {
	var err error
	buf, err = encodeName(buf, rr.Name)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
	buf = binary.BigEndian.AppendUint16(buf, ClassIN)
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	rdata, err := encodeRData(rr.Type, rr.Data)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(rdata)))
	return append(buf, rdata...), nil
}

func encodeRData(t Type, data string) ([]byte, error) {
	switch t {
	case TypeA:
		ip, err := parseIPv4(data)
		if err != nil {
			return nil, err
		}
		return ip[:], nil
	case TypeNS, TypeCNAME, TypePTR:
		return encodeName(nil, data)
	case TypeMX:
		fields := strings.Fields(data)
		if len(fields) != 2 {
			return nil, fmt.Errorf("dnswire: MX data %q must be \"pref host\"", data)
		}
		var pref int
		if _, err := fmt.Sscanf(fields[0], "%d", &pref); err != nil {
			return nil, fmt.Errorf("dnswire: bad MX preference %q", fields[0])
		}
		buf := binary.BigEndian.AppendUint16(nil, uint16(pref))
		return encodeName(buf, fields[1])
	case TypeTXT:
		txt := data
		if len(txt) > 255 {
			txt = txt[:255]
		}
		return append([]byte{byte(len(txt))}, txt...), nil
	case TypeHINFO, TypeRP:
		// Two fields; HINFO uses character strings, RP two names. Encode
		// both as the presentation text in one TXT-style string for the
		// simulators (queries for these types are not wire-tested).
		fields := strings.Fields(data)
		var buf []byte
		for _, f := range fields {
			if len(f) > 255 {
				f = f[:255]
			}
			buf = append(buf, byte(len(f)))
			buf = append(buf, f...)
		}
		return buf, nil
	case TypeSOA:
		fields := strings.Fields(data)
		if len(fields) != 7 {
			return nil, fmt.Errorf("dnswire: SOA data %q must have 7 fields", data)
		}
		buf, err := encodeName(nil, fields[0])
		if err != nil {
			return nil, err
		}
		buf, err = encodeName(buf, fields[1])
		if err != nil {
			return nil, err
		}
		for _, f := range fields[2:] {
			var n uint32
			if _, err := fmt.Sscanf(f, "%d", &n); err != nil {
				return nil, fmt.Errorf("dnswire: bad SOA number %q", f)
			}
			buf = binary.BigEndian.AppendUint32(buf, n)
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("dnswire: cannot encode rdata for %s", t)
	}
}

func parseIPv4(s string) ([4]byte, error) {
	var ip [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("dnswire: bad IPv4 %q", s)
	}
	for i, p := range parts {
		var n int
		if _, err := fmt.Sscanf(p, "%d", &n); err != nil || n < 0 || n > 255 {
			return ip, fmt.Errorf("dnswire: bad IPv4 %q", s)
		}
		ip[i] = byte(n)
	}
	return ip, nil
}

// Decode parses a wire-format message.
func Decode(msg []byte) (*Message, error) {
	if len(msg) < 12 {
		return nil, ErrTruncated
	}
	m := &Message{}
	m.ID = binary.BigEndian.Uint16(msg[0:2])
	flags := binary.BigEndian.Uint16(msg[2:4])
	m.Response = flags&(1<<15) != 0
	m.Authoritative = flags&(1<<10) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RCode = RCode(flags & 0xF)
	qd := int(binary.BigEndian.Uint16(msg[4:6]))
	an := int(binary.BigEndian.Uint16(msg[6:8]))
	ns := int(binary.BigEndian.Uint16(msg[8:10]))

	off := 12
	for i := 0; i < qd; i++ {
		name, next, err := decodeName(msg, off)
		if err != nil {
			return nil, err
		}
		off = next
		if off+4 > len(msg) {
			return nil, ErrTruncated
		}
		m.Questions = append(m.Questions, Question{
			Name: name,
			Type: Type(binary.BigEndian.Uint16(msg[off : off+2])),
		})
		off += 4
	}
	var err error
	for i := 0; i < an; i++ {
		var rr RR
		rr, off, err = decodeRR(msg, off)
		if err != nil {
			return nil, err
		}
		m.Answers = append(m.Answers, rr)
	}
	for i := 0; i < ns; i++ {
		var rr RR
		rr, off, err = decodeRR(msg, off)
		if err != nil {
			return nil, err
		}
		m.Authority = append(m.Authority, rr)
	}
	return m, nil
}

func decodeRR(msg []byte, off int) (RR, int, error) {
	var rr RR
	name, next, err := decodeName(msg, off)
	if err != nil {
		return rr, 0, err
	}
	off = next
	if off+10 > len(msg) {
		return rr, 0, ErrTruncated
	}
	rr.Name = name
	rr.Type = Type(binary.BigEndian.Uint16(msg[off : off+2]))
	rr.TTL = binary.BigEndian.Uint32(msg[off+4 : off+8])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8 : off+10]))
	off += 10
	if off+rdlen > len(msg) {
		return rr, 0, ErrTruncated
	}
	rdata := msg[off : off+rdlen]
	rr.Data, err = decodeRData(msg, off, rr.Type, rdata)
	if err != nil {
		return rr, 0, err
	}
	return rr, off + rdlen, nil
}

func decodeRData(msg []byte, off int, t Type, rdata []byte) (string, error) {
	switch t {
	case TypeA:
		if len(rdata) != 4 {
			return "", ErrTruncated
		}
		return fmt.Sprintf("%d.%d.%d.%d", rdata[0], rdata[1], rdata[2], rdata[3]), nil
	case TypeNS, TypeCNAME, TypePTR:
		name, _, err := decodeName(msg, off)
		return name, err
	case TypeMX:
		if len(rdata) < 3 {
			return "", ErrTruncated
		}
		pref := binary.BigEndian.Uint16(rdata[0:2])
		host, _, err := decodeName(msg, off+2)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d %s", pref, host), nil
	case TypeTXT, TypeHINFO, TypeRP:
		var parts []string
		i := 0
		for i < len(rdata) {
			l := int(rdata[i])
			if i+1+l > len(rdata) {
				return "", ErrTruncated
			}
			parts = append(parts, string(rdata[i+1:i+1+l]))
			i += 1 + l
		}
		return strings.Join(parts, " "), nil
	case TypeSOA:
		mname, next, err := decodeName(msg, off)
		if err != nil {
			return "", err
		}
		rname, next, err := decodeName(msg, next)
		if err != nil {
			return "", err
		}
		rel := next - off
		if rel+20 > len(rdata) {
			return "", ErrTruncated
		}
		nums := make([]string, 5)
		for i := 0; i < 5; i++ {
			nums[i] = fmt.Sprint(binary.BigEndian.Uint32(rdata[rel+4*i : rel+4*i+4]))
		}
		return fmt.Sprintf("%s %s %s", mname, rname, strings.Join(nums, " ")), nil
	default:
		return fmt.Sprintf("\\#%d", len(rdata)), nil
	}
}
