package dnswire

import "testing"

// FuzzDecode checks the decoder never panics and that decodable messages
// re-encode without error.
func FuzzDecode(f *testing.F) {
	seed, _ := benchMessage().Encode()
	f.Add(seed)
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Decoded names may be unencodable (e.g. 64-char labels from
		// crafted packets are impossible, but empty labels can appear);
		// Encode may legitimately error — it must simply not panic.
		_, _ = m.Encode()
	})
}
