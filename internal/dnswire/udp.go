package dnswire

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler answers one DNS question, returning the answer and authority
// sections and a response code.
type Handler func(q Question) (answers, authority []RR, rcode RCode)

// Server is a minimal UDP DNS server used by the simulated name servers.
type Server struct {
	handler Handler
	conn    net.PacketConn
	wg      sync.WaitGroup
}

// NewServer returns a server that answers questions with the handler.
func NewServer(h Handler) *Server {
	return &Server{handler: h}
}

// Listen binds the server to a UDP address ("127.0.0.1:0" picks a free
// port) and starts serving in the background.
func (s *Server) Listen(addr string) error {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return fmt.Errorf("dnswire: listen %s: %w", addr, err)
	}
	s.conn = conn
	s.wg.Add(1)
	go s.serve()
	return nil
}

// Addr returns the bound UDP address, valid after Listen.
func (s *Server) Addr() string {
	if s.conn == nil {
		return ""
	}
	return s.conn.LocalAddr().String()
}

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	s.wg.Wait()
	s.conn = nil
	return err
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, addr, err := s.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		req, err := Decode(buf[:n])
		if err != nil || len(req.Questions) == 0 {
			continue
		}
		q := req.Questions[0]
		ans, auth, rcode := s.handler(q)
		resp := &Message{
			ID:               req.ID,
			Response:         true,
			Authoritative:    true,
			RecursionDesired: req.RecursionDesired,
			RCode:            rcode,
			Questions:        []Question{q},
			Answers:          ans,
			Authority:        auth,
		}
		out, err := resp.Encode()
		if err != nil {
			// Fall back to a SERVFAIL with no records.
			resp.Answers, resp.Authority, resp.RCode = nil, nil, RCodeServFail
			out, err = resp.Encode()
			if err != nil {
				continue
			}
		}
		_, _ = s.conn.WriteTo(out, addr)
	}
}

// Query sends a single question to a DNS server over UDP and waits for the
// response.
func Query(addr string, name string, t Type, timeout time.Duration) (*Message, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnswire: dial %s: %w", addr, err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("dnswire: deadline: %w", err)
	}
	req := &Message{
		ID:               uint16(time.Now().UnixNano() & 0xFFFF),
		RecursionDesired: true,
		Questions:        []Question{{Name: name, Type: t}},
	}
	out, err := req.Encode()
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(out); err != nil {
		return nil, fmt.Errorf("dnswire: send: %w", err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("dnswire: receive: %w", err)
	}
	resp, err := Decode(buf[:n])
	if err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("dnswire: response ID mismatch")
	}
	return resp, nil
}

// ReverseName returns the in-addr.arpa name for a dotted-quad IPv4
// address, e.g. "192.0.2.10" ⇒ "10.2.0.192.in-addr.arpa".
func ReverseName(ip string) (string, error) {
	quad, err := parseIPv4(ip)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa", quad[3], quad[2], quad[1], quad[0]), nil
}
