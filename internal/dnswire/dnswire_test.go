package dnswire

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeMX.String() != "MX" || Type(999).String() != "TYPE999" {
		t.Error("type names wrong")
	}
	if tt, ok := TypeFromString("cname"); !ok || tt != TypeCNAME {
		t.Error("TypeFromString failed")
	}
	if _, ok := TypeFromString("BOGUS"); ok {
		t.Error("bogus type resolved")
	}
}

func TestCanonicalName(t *testing.T) {
	if CanonicalName("WWW.Example.COM.") != "www.example.com" {
		t.Error("canonicalization wrong")
	}
	if CanonicalName("") != "" {
		t.Error("empty name")
	}
}

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	wire, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return dec
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		ID:               0x1234,
		Response:         true,
		Authoritative:    true,
		RecursionDesired: true,
		RCode:            RCodeNXDomain,
		Questions:        []Question{{Name: "www.example.com", Type: TypeA}},
		Answers: []RR{
			{Name: "www.example.com", Type: TypeA, TTL: 3600, Data: "192.0.2.10"},
			{Name: "example.com", Type: TypeMX, TTL: 3600, Data: "10 mail.example.com"},
			{Name: "alias.example.com", Type: TypeCNAME, TTL: 60, Data: "www.example.com"},
			{Name: "example.com", Type: TypeTXT, TTL: 60, Data: "hello world"},
			{Name: "10.2.0.192.in-addr.arpa", Type: TypePTR, TTL: 60, Data: "www.example.com"},
			{Name: "example.com", Type: TypeSOA, TTL: 60,
				Data: "ns1.example.com hostmaster.example.com 2008060101 3600 900 604800 86400"},
		},
		Authority: []RR{
			{Name: "example.com", Type: TypeNS, TTL: 3600, Data: "ns1.example.com"},
		},
	}
	dec := roundTrip(t, m)
	if dec.ID != m.ID || !dec.Response || !dec.Authoritative || !dec.RecursionDesired {
		t.Errorf("header = %+v", dec)
	}
	if dec.RCode != RCodeNXDomain {
		t.Errorf("rcode = %v", dec.RCode)
	}
	if len(dec.Questions) != 1 || dec.Questions[0].Name != "www.example.com" || dec.Questions[0].Type != TypeA {
		t.Errorf("questions = %+v", dec.Questions)
	}
	if len(dec.Answers) != len(m.Answers) {
		t.Fatalf("answers = %d, want %d", len(dec.Answers), len(m.Answers))
	}
	for i, rr := range dec.Answers {
		want := m.Answers[i]
		if rr.Name != CanonicalName(want.Name) || rr.Type != want.Type || rr.TTL != want.TTL {
			t.Errorf("answer %d = %+v, want %+v", i, rr, want)
		}
	}
	if dec.Answers[0].Data != "192.0.2.10" {
		t.Errorf("A data = %q", dec.Answers[0].Data)
	}
	if dec.Answers[1].Data != "10 mail.example.com" {
		t.Errorf("MX data = %q", dec.Answers[1].Data)
	}
	if dec.Answers[3].Data != "hello world" {
		t.Errorf("TXT data = %q", dec.Answers[3].Data)
	}
	if !strings.HasPrefix(dec.Answers[5].Data, "ns1.example.com hostmaster.example.com 2008060101") {
		t.Errorf("SOA data = %q", dec.Answers[5].Data)
	}
	if len(dec.Authority) != 1 || dec.Authority[0].Data != "ns1.example.com" {
		t.Errorf("authority = %+v", dec.Authority)
	}
}

func TestHINFOAndRP(t *testing.T) {
	m := &Message{
		ID:        7,
		Questions: []Question{{Name: "h.example.com", Type: TypeHINFO}},
		Answers: []RR{
			{Name: "h.example.com", Type: TypeHINFO, TTL: 60, Data: "i386 linux"},
			{Name: "h.example.com", Type: TypeRP, TTL: 60, Data: "admin.example.com txt.example.com"},
		},
	}
	dec := roundTrip(t, m)
	if dec.Answers[0].Data != "i386 linux" {
		t.Errorf("HINFO = %q", dec.Answers[0].Data)
	}
	if dec.Answers[1].Data != "admin.example.com txt.example.com" {
		t.Errorf("RP = %q", dec.Answers[1].Data)
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []*Message{
		{Answers: []RR{{Name: "x", Type: TypeA, Data: "not-an-ip"}}},
		{Answers: []RR{{Name: "x", Type: TypeA, Data: "1.2.3.999"}}},
		{Answers: []RR{{Name: "x", Type: TypeMX, Data: "nopref"}}},
		{Answers: []RR{{Name: "x", Type: TypeMX, Data: "p host"}}},
		{Answers: []RR{{Name: "x", Type: TypeSOA, Data: "a b 1 2 3"}}},
		{Answers: []RR{{Name: strings.Repeat("a", 64) + ".com", Type: TypeA, Data: "1.2.3.4"}}},
		{Answers: []RR{{Name: "x..y", Type: TypeA, Data: "1.2.3.4"}}},
	}
	for i, m := range bad {
		if _, err := m.Encode(); err == nil {
			t.Errorf("case %d: Encode succeeded", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short message decoded")
	}
	// Claimed question but no body.
	hdr := make([]byte, 12)
	hdr[5] = 1 // QDCOUNT=1
	if _, err := Decode(hdr); err == nil {
		t.Error("truncated question decoded")
	}
	// Compression loop: name pointer to itself.
	msg := make([]byte, 16)
	msg[5] = 1
	msg[12] = 0xC0
	msg[13] = 12
	if _, err := Decode(msg); err == nil {
		t.Error("compression loop decoded")
	}
}

func TestNameCompressionDecode(t *testing.T) {
	// Build a message manually with a compressed name in the answer.
	m := &Message{ID: 9, Questions: []Question{{Name: "www.example.com", Type: TypeA}}}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Append an answer whose name is a pointer to offset 12 (the question
	// name) — exercising the decompression path.
	wire[7] = 1                      // ANCOUNT = 1
	wire = append(wire, 0xC0, 12)    // name: pointer
	wire = append(wire, 0, 1, 0, 1)  // type A, class IN
	wire = append(wire, 0, 0, 0, 60) // TTL
	wire = append(wire, 0, 4, 192, 0, 2, 1)
	dec, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Answers) != 1 || dec.Answers[0].Name != "www.example.com" || dec.Answers[0].Data != "192.0.2.1" {
		t.Errorf("answer = %+v", dec.Answers)
	}
}

func TestServerAndQuery(t *testing.T) {
	srv := NewServer(func(q Question) ([]RR, []RR, RCode) {
		if q.Name == "www.example.com" && q.Type == TypeA {
			return []RR{{Name: q.Name, Type: TypeA, TTL: 60, Data: "192.0.2.10"}}, nil, RCodeNoError
		}
		return nil, nil, RCodeNXDomain
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Fatal("no addr")
	}

	resp, err := Query(srv.Addr(), "www.example.com", TypeA, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != RCodeNoError || len(resp.Answers) != 1 || resp.Answers[0].Data != "192.0.2.10" {
		t.Errorf("resp = %+v", resp)
	}

	resp, err = Query(srv.Addr(), "nx.example.com", TypeA, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != RCodeNXDomain {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(func(Question) ([]RR, []RR, RCode) { return nil, nil, RCodeNoError })
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if srv.Addr() != "" {
		t.Error("Addr after close")
	}
}

func TestReverseName(t *testing.T) {
	got, err := ReverseName("192.0.2.10")
	if err != nil || got != "10.2.0.192.in-addr.arpa" {
		t.Errorf("ReverseName = %q, %v", got, err)
	}
	if _, err := ReverseName("not-ip"); err == nil {
		t.Error("bad IP accepted")
	}
}

// Property: names that survive encoding decode to their canonical form.
func TestPropertyNameRoundTrip(t *testing.T) {
	f := func(labels []string) bool {
		var clean []string
		for _, l := range labels {
			l = strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
					return r
				}
				return -1
			}, strings.ToLower(l))
			if l != "" && len(l) <= 63 {
				clean = append(clean, l)
			}
			if len(clean) == 4 {
				break
			}
		}
		if len(clean) == 0 {
			return true
		}
		name := strings.Join(clean, ".")
		buf, err := encodeName(nil, name)
		if err != nil {
			return false
		}
		dec, _, err := decodeName(buf, 0)
		return err == nil && dec == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
