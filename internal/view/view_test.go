package view

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"conferr/internal/confnode"
)

// sysSet builds a system-representation set resembling a parsed my.cnf:
//
//	[mysqld] port=3306, key_buffer_size=16M
//	[mysqldump] quick (no value)
//	plus a comment and a blank line for round-trip realism.
func sysSet() *confnode.Set {
	doc := confnode.New(confnode.KindDocument, "my.cnf")
	doc.Append(confnode.NewValued(confnode.KindComment, "", "# default config"))
	mysqld := confnode.New(confnode.KindSection, "mysqld")
	mysqld.Append(
		confnode.NewValued(confnode.KindDirective, "port", "3306"),
		confnode.NewValued(confnode.KindDirective, "key_buffer_size", "16M"),
	)
	dump := confnode.New(confnode.KindSection, "mysqldump")
	dump.Append(confnode.NewValued(confnode.KindDirective, "quick", ""))
	doc.Append(mysqld, confnode.New(confnode.KindBlank, ""), dump)
	set := confnode.NewSet()
	set.Put("my.cnf", doc)
	return set
}

func TestStructViewIdentity(t *testing.T) {
	v := StructView{}
	if v.Name() != "struct" {
		t.Errorf("Name = %q", v.Name())
	}
	sys := sysSet()
	fwd, err := v.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !fwd.Equal(sys) {
		t.Error("struct forward should be identity")
	}
	// Mutating forward must not affect the original.
	fwd.Get("my.cnf").Child(1).Remove()
	if fwd.Equal(sys) {
		t.Error("forward shares nodes with input")
	}
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(fwd) {
		t.Error("struct backward should return mutated set")
	}
}

func TestWordViewForward(t *testing.T) {
	v := WordView{}
	if v.Name() != "word" {
		t.Errorf("Name = %q", v.Name())
	}
	sys := sysSet()
	fwd, err := v.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}
	doc := fwd.Get("my.cnf")
	lines := doc.ChildrenByKind(confnode.KindLine)
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (one per directive)", len(lines))
	}
	// First line: port 3306.
	words := lines[0].ChildrenByKind(confnode.KindWord)
	if len(words) != 2 {
		t.Fatalf("words = %d, want 2", len(words))
	}
	if words[0].Value != "port" || words[0].AttrDefault(TokenAttr, "") != TokenName {
		t.Errorf("name token = %q/%q", words[0].Value, words[0].AttrDefault(TokenAttr, ""))
	}
	if words[1].Value != "3306" || words[1].AttrDefault(TokenAttr, "") != TokenValue {
		t.Errorf("value token = %q/%q", words[1].Value, words[1].AttrDefault(TokenAttr, ""))
	}
	// Valueless directive has only the name token.
	words = lines[2].ChildrenByKind(confnode.KindWord)
	if len(words) != 1 || words[0].Value != "quick" {
		t.Errorf("quick line tokens = %v", words)
	}
	// Every line has provenance.
	for _, l := range lines {
		if _, ok := l.Attr(SrcAttr); !ok {
			t.Error("line missing provenance")
		}
	}
}

func TestWordViewMultiWordValue(t *testing.T) {
	doc := confnode.New(confnode.KindDocument, "httpd.conf")
	doc.Append(confnode.NewValued(confnode.KindDirective, "AddType", "application/x-tar .tgz"))
	sys := confnode.NewSet()
	sys.Put("httpd.conf", doc)
	fwd, err := WordView{}.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}
	words := fwd.Get("httpd.conf").Child(0).ChildrenByKind(confnode.KindWord)
	if len(words) != 3 {
		t.Fatalf("words = %d, want 3", len(words))
	}
	if words[1].Value != "application/x-tar" || words[2].Value != ".tgz" {
		t.Errorf("value words = %q, %q", words[1].Value, words[2].Value)
	}
}

func TestWordViewBackwardAppliesMutation(t *testing.T) {
	v := WordView{}
	sys := sysSet()
	fwd, _ := v.Forward(sys)
	// Introduce a typo into the "port" name token.
	fwd.Get("my.cnf").Child(0).Child(0).Value = "porr"
	// And change the key_buffer_size value.
	fwd.Get("my.cnf").Child(1).Child(1).Value = "1M0"
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	mysqld := back.Get("my.cnf").Child(1) // comment is child 0
	if got := mysqld.Child(0).Name; got != "porr" {
		t.Errorf("directive name = %q, want porr", got)
	}
	if got := mysqld.Child(1).Value; got != "1M0" {
		t.Errorf("directive value = %q, want 1M0", got)
	}
	// Original untouched.
	if sys.Get("my.cnf").Child(1).Child(0).Name != "port" {
		t.Error("backward mutated the original system set")
	}
	// Comments/blanks preserved.
	if back.Get("my.cnf").Child(0).Kind != confnode.KindComment {
		t.Error("comment lost in backward transform")
	}
}

func TestWordViewRoundTripIdentity(t *testing.T) {
	v := WordView{}
	sys := sysSet()
	fwd, _ := v.Forward(sys)
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(sys) {
		t.Errorf("unmutated round trip should be identity:\nwant:\n%s\ngot:\n%s", sys.Dump(), back.Dump())
	}
}

func TestWordViewBackwardErrors(t *testing.T) {
	v := WordView{}
	sys := sysSet()

	// Line without provenance.
	fwd, _ := v.Forward(sys)
	fwd.Get("my.cnf").Child(0).DelAttr(SrcAttr)
	if _, err := v.Backward(fwd, sys); !errors.Is(err, ErrNotExpressible) {
		t.Errorf("missing provenance: err = %v", err)
	}

	// Malformed provenance.
	fwd2, _ := v.Forward(sys)
	fwd2.Get("my.cnf").Child(0).SetAttr(SrcAttr, "no-separator")
	if _, err := v.Backward(fwd2, sys); err == nil {
		t.Error("malformed provenance should error")
	}

	// Stale provenance (system node gone).
	fwd3, _ := v.Forward(sys)
	fwd3.Get("my.cnf").Child(0).SetAttr(SrcAttr, "my.cnf#9.9")
	if _, err := v.Backward(fwd3, sys); !errors.Is(err, ErrNotExpressible) {
		t.Errorf("stale provenance: err = %v", err)
	}
}

func TestWordViewValueRejoining(t *testing.T) {
	// Multi-space values are normalized to single spaces on the way back;
	// directive semantics are whitespace-insensitive in all target formats.
	doc := confnode.New(confnode.KindDocument, "a.conf")
	doc.Append(confnode.NewValued(confnode.KindDirective, "opts", "a   b\tc"))
	sys := confnode.NewSet()
	sys.Put("a.conf", doc)
	v := WordView{}
	fwd, _ := v.Forward(sys)
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Get("a.conf").Child(0).Value; got != "a b c" {
		t.Errorf("rejoined value = %q", got)
	}
	if !strings.Contains(fwd.Get("a.conf").Child(0).AttrDefault(SrcAttr, ""), "#") {
		t.Error("provenance format changed")
	}
}

// TestPropertyWordViewRoundTrip: for arbitrary generated configurations,
// an unmutated Forward∘Backward pass is the identity — mutations are the
// ONLY difference campaigns introduce.
func TestPropertyWordViewRoundTrip(t *testing.T) {
	names := []string{"port", "key_buffer_size", "Listen", "a", "x-y"}
	values := []string{"", "3306", "16M", "a b c", "text/html .shtml", "'quoted'"}
	f := func(picks []uint16) bool {
		doc := confnode.New(confnode.KindDocument, "f.conf")
		sec := doc
		for _, p := range picks {
			n := int(p)
			switch n % 4 {
			case 0:
				sec = confnode.New(confnode.KindSection, names[n%len(names)])
				doc.Append(sec)
			default:
				sec.Append(confnode.NewValued(confnode.KindDirective,
					names[n%len(names)], values[n%len(values)]))
			}
		}
		sys := confnode.NewSet()
		sys.Put("f.conf", doc)
		v := WordView{}
		fwd, err := v.Forward(sys)
		if err != nil {
			return false
		}
		back, err := v.Backward(fwd, sys)
		if err != nil {
			return false
		}
		// Values with irregular internal whitespace normalize; our
		// generated values use single spaces, so identity must hold.
		return back.Equal(sys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
