// Package view implements bidirectional transformations between the
// system-specific representation of a configuration and the plugin-specific
// representations error generators operate on (paper §3.2).
//
// The original ConfErr performs this mapping with XSLT and records
// auxiliary information so the mutated plugin view can be mapped back to
// the system representation; mapping back can fail when the mutated state
// is not expressible in the system's configuration language, which is a
// first-class outcome (paper §5.4). Here the same roles are played by the
// View interface, provenance attributes, and ErrNotExpressible.
package view

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"

	"conferr/internal/confnode"
	"conferr/internal/template"
)

// ErrNotExpressible is returned by Backward when the mutated plugin-view
// state cannot be expressed in the system-specific configuration language
// (e.g. a fault that deletes one half of a record pair that the target
// format can only write as a single combined directive).
var ErrNotExpressible = errors.New("mutated configuration not expressible in system format")

// View maps between the system-specific configuration representation and a
// plugin-specific one.
type View interface {
	// Name identifies the view, e.g. "word" or "struct".
	Name() string
	// Forward derives the plugin-specific representation from the system
	// one. The input must not be mutated.
	Forward(sys *confnode.Set) (*confnode.Set, error)
	// Backward folds a (possibly mutated) plugin-view set back onto the
	// original system set, returning a new system set. It returns an error
	// wrapping ErrNotExpressible when the view state has no system-format
	// equivalent. sys must not be mutated; the engine owns mutated, and
	// Backward should treat it as read-only too (clone before any
	// in-place folding, as the built-in views do).
	Backward(mutated, sys *confnode.Set) (*confnode.Set, error)
}

// Incremental is an optional View extension used by the engine's fast
// injection path. IncrementalBackward is Backward restricted to the files
// a scenario dirtied: implementations build the result as sys.Tracked()
// and fold only the dirty view files onto it, so untouched files share the
// baseline trees and the returned (tracked) set reports exactly the system
// files the back-transform rewrote. The engine serializes those and reuses
// cached baseline bytes for the rest; views that do not implement
// Incremental simply fall back to the full Backward.
//
// Contract notes:
//   - dirty lists the mutated view files in set order; mutated is sealed
//     (reads are safe, clean files share baseline trees).
//   - The result may adopt mutated's dirty trees without cloning; callers
//     must not reuse mutated afterwards.
//   - Errors must match what Backward would return for the same mutation,
//     so the fast and reference paths stay record-for-record identical.
//   - A view that embeds an Incremental implementation but overrides
//     Backward MUST also override (or shadow) IncrementalBackward:
//     inheriting one without the other desynchronizes the two paths.
type Incremental interface {
	View
	IncrementalBackward(dirty []string, mutated, sys *confnode.Set) (*confnode.Set, error)
}

// IncrementalInto is an optional refinement of Incremental for views whose
// incremental back-transform can rebuild a caller-owned tracked wrapper
// instead of allocating one per experiment. dst is the wrapper to reuse
// (nil allocates a fresh one, making the call equivalent to
// IncrementalBackward); it must not be in use — the engine threads one per
// worker through consecutive experiments, the same ownership discipline as
// confnode.Set.TrackedInto. The returned set is dst (or the fresh
// wrapper) and everything else of the Incremental contract applies
// unchanged.
type IncrementalInto interface {
	Incremental
	IncrementalBackwardInto(dst *confnode.Set, dirty []string, mutated, sys *confnode.Set) (*confnode.Set, error)
}

// SrcAttr is the provenance attribute linking a view node to the system
// node it was derived from; its value is a template.Ref string produced by
// refString.
const SrcAttr = "src"

// TokenAttr classifies word-view tokens ("name" or "value"), letting the
// spelling plugin restrict injection to a part of the configuration (paper
// §4.1).
const TokenAttr = "token"

// Token classes for word-view nodes.
const (
	// TokenName marks a word holding a directive name.
	TokenName = "name"
	// TokenValue marks a word holding (part of) a directive value.
	TokenValue = "value"
)

// StructView exposes the system representation directly: sections and
// directives. Forward clones; Backward returns the mutated tree as-is.
// This is the view used by the structural-errors plugin — the paper notes
// the transformation is usually very simple; here it is the identity.
type StructView struct{}

var _ IncrementalInto = StructView{}

// Name implements View.
func (StructView) Name() string { return "struct" }

// Forward implements View.
func (StructView) Forward(sys *confnode.Set) (*confnode.Set, error) {
	return sys.Clone(), nil
}

// Backward implements View.
func (StructView) Backward(mutated, _ *confnode.Set) (*confnode.Set, error) {
	return mutated.Clone(), nil
}

// IncrementalBackward implements Incremental: the identity transform only
// has to adopt the dirty view trees; clean files keep sharing the system
// baseline.
func (v StructView) IncrementalBackward(dirty []string, mutated, sys *confnode.Set) (*confnode.Set, error) {
	return v.IncrementalBackwardInto(nil, dirty, mutated, sys)
}

// IncrementalBackwardInto implements IncrementalInto.
func (StructView) IncrementalBackwardInto(dst *confnode.Set, dirty []string, mutated, sys *confnode.Set) (*confnode.Set, error) {
	out := sys.TrackedInto(dst, mutated.Arena())
	for _, file := range dirty {
		out.Put(file, mutated.Get(file))
	}
	return out, nil
}

// WordView represents every directive as a line of typed word tokens: the
// directive name (token class "name") followed by the whitespace-separated
// words of its value (token class "value"). It is the representation used
// for typo injection (paper Figure 2.c).
//
// Section names are not exposed: the paper's spelling plugin targets
// directive names and values (§5.2).
type WordView struct{}

var _ IncrementalInto = WordView{}

// Name implements View.
func (WordView) Name() string { return "word" }

// Forward implements View.
func (WordView) Forward(sys *confnode.Set) (*confnode.Set, error) {
	out := confnode.NewSet()
	sys.Walk(func(file string, root *confnode.Node) {
		doc := confnode.New(confnode.KindDocument, file)
		root.Walk(func(n *confnode.Node) bool {
			if n.Kind != confnode.KindDirective {
				return true
			}
			line := confnode.New(confnode.KindLine, "")
			line.SetAttr(SrcAttr, template.RefOf(file, n).String())
			name := confnode.NewValued(confnode.KindWord, "", n.Name)
			name.SetAttr(TokenAttr, TokenName)
			line.Append(name)
			for _, w := range strings.Fields(n.Value) {
				word := confnode.NewValued(confnode.KindWord, "", w)
				word.SetAttr(TokenAttr, TokenValue)
				line.Append(word)
			}
			doc.Append(line)
			return true
		})
		out.Put(file, doc)
	})
	return out, nil
}

// Backward implements View. Each line is folded back onto the system
// directive it came from: the name token becomes the directive name and
// the value tokens are re-joined with single spaces. A line whose
// provenance no longer resolves yields an error.
func (WordView) Backward(mutated, sys *confnode.Set) (*confnode.Set, error) {
	out := sys.Clone()
	buf := foldBufPool.Get().(*[]byte)
	defer foldBufPool.Put(buf)
	var retErr error
	mutated.Walk(func(file string, root *confnode.Node) {
		if retErr != nil {
			return
		}
		retErr = backwardWordFile(out, root, buf)
	})
	if retErr != nil {
		return nil, retErr
	}
	return out, nil
}

// IncrementalBackward implements Incremental: only the dirty files' lines
// are folded back. Folding resolves provenance against the tracked output
// set, so whatever system file a line's ref points at — normally its own
// file, but cross-file after exotic attribute mutations — is materialized
// (and thereby reported dirty) before being rewritten. To stay
// fold-for-fold identical with the full Backward, files are visited in
// set order and a clean file is re-folded once an earlier cross-file
// write has materialized its system file: in the full path that clean
// fold runs unconditionally and overwrites such a write with the
// baseline tokens.
func (v WordView) IncrementalBackward(dirty []string, mutated, sys *confnode.Set) (*confnode.Set, error) {
	return v.IncrementalBackwardInto(nil, dirty, mutated, sys)
}

// IncrementalBackwardInto implements IncrementalInto.
func (WordView) IncrementalBackwardInto(dst *confnode.Set, dirty []string, mutated, sys *confnode.Set) (*confnode.Set, error) {
	out := sys.TrackedInto(dst, mutated.Arena())
	buf := foldBufPool.Get().(*[]byte)
	defer foldBufPool.Put(buf)
	var retErr error
	mutated.Each(func(file string, root *confnode.Node) bool {
		// The dirty list is short and set-ordered: a linear scan beats
		// building a lookup map per experiment.
		if !slices.Contains(dirty, file) && !out.IsDirty(file) {
			return true
		}
		if root == nil {
			return true
		}
		if err := backwardWordFile(out, root, buf); err != nil {
			retErr = err
			return false
		}
		return true
	})
	if retErr != nil {
		return nil, retErr
	}
	return out, nil
}

// foldBufPool recycles the scratch buffers backwardWordFile re-joins
// directive values in, keeping the per-line fold allocation-free across
// experiments and workers.
var foldBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// refCache memoizes template.ParseRef by source string. Provenance
// attributes come from the frozen baseline view, so a campaign folds the
// same handful of ref strings millions of times; parsing each once turns
// the per-line split/Atoi work into a map hit. Mutated provenance (a
// plugin rewriting SrcAttr) can introduce new strings, so the cache is
// capped — past the cap, misses simply parse without storing.
var (
	refCacheMu sync.RWMutex
	refCache   map[string]template.Ref
)

// refCacheCap bounds refCache; far above any real configuration's line
// count, small enough that adversarial SrcAttr churn stays cheap.
const refCacheCap = 4096

// parseRefCached is template.ParseRef through refCache. Only successful
// parses are cached; errors keep ParseRef's exact wording.
func parseRefCached(s string) (template.Ref, error) {
	refCacheMu.RLock()
	ref, ok := refCache[s]
	refCacheMu.RUnlock()
	if ok {
		return ref, nil
	}
	ref, err := template.ParseRef(s)
	if err != nil {
		return template.Ref{}, err
	}
	refCacheMu.Lock()
	if refCache == nil {
		refCache = make(map[string]template.Ref, 64)
	}
	if len(refCache) < refCacheCap {
		refCache[s] = ref
	}
	refCacheMu.Unlock()
	return ref, nil
}

// backwardWordFile folds one word-view document's lines onto the system
// directives they came from. It is the injection hot path's inner loop,
// shaped to stay allocation-free for clean lines: children are scanned in
// place (no per-kind slices), the value words are re-joined into the
// caller's scratch buffer, and the directive is only rewritten when the
// joined value actually differs — folding the baseline back onto itself,
// which is what almost every line of almost every experiment does, writes
// nothing.
func backwardWordFile(out *confnode.Set, root *confnode.Node, buf *[]byte) error {
	for _, line := range root.Children() {
		if line.Kind != confnode.KindLine {
			continue
		}
		srcStr, ok := line.Attr(SrcAttr)
		if !ok {
			return fmt.Errorf("word view: line without provenance: %w", ErrNotExpressible)
		}
		ref, err := parseRefCached(srcStr)
		if err != nil {
			return err
		}
		dir, err := ref.Resolve(out)
		if err != nil {
			return fmt.Errorf("word view: stale provenance %q: %v: %w", srcStr, err, ErrNotExpressible)
		}
		var name string
		b := (*buf)[:0]
		sawValue := false
		for _, w := range line.Children() {
			if w.Kind != confnode.KindWord {
				continue
			}
			if w.AttrDefault(TokenAttr, TokenValue) == TokenName {
				name = w.Value
			} else {
				if sawValue {
					b = append(b, ' ')
				}
				b = append(b, w.Value...)
				sawValue = true
			}
		}
		*buf = b
		dir.Name = name
		if string(b) != dir.Value {
			dir.Value = string(b)
		}
	}
	return nil
}
