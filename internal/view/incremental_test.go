package view

import (
	"testing"

	"conferr/internal/confnode"
)

// multiSysSet is sysSet plus a second, independent file, so incremental
// tests can tell "untouched file shared" apart from "whole set rebuilt".
func multiSysSet() *confnode.Set {
	set := sysSet()
	other := confnode.New(confnode.KindDocument, "other.conf")
	other.Append(
		confnode.NewValued(confnode.KindDirective, "alpha", "1"),
		confnode.NewValued(confnode.KindDirective, "beta", "2 3"),
	)
	set.Put("other.conf", other)
	return set
}

// checkIncremental applies mutate to a tracked forward view and verifies
// the incremental backward result against the full Backward reference:
// dirty files must be structurally identical, clean files must share the
// baseline system trees by pointer.
func checkIncremental(t *testing.T, v Incremental, sys *confnode.Set, mutate func(*confnode.Set)) {
	t.Helper()
	fwd, err := v.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}

	refMutated := fwd.Clone()
	mutate(refMutated)
	want, err := v.Backward(refMutated, sys)
	if err != nil {
		t.Fatal(err)
	}

	tracked := fwd.Tracked()
	mutate(tracked)
	viewDirty := tracked.Seal()
	out, err := v.IncrementalBackward(viewDirty, tracked, sys)
	if err != nil {
		t.Fatal(err)
	}
	sysDirty := map[string]bool{}
	for _, name := range out.Seal() {
		sysDirty[name] = true
	}

	for _, name := range want.Names() {
		if !sysDirty[name] {
			continue
		}
		if !out.Get(name).Equal(want.Get(name)) {
			t.Errorf("dirty file %s diverges from full Backward:\nfast:\n%s\nreference:\n%s",
				name, out.Get(name).Dump(), want.Get(name).Dump())
		}
	}
	for _, name := range out.Names() {
		if sysDirty[name] {
			continue
		}
		if out.Get(name) != sys.Get(name) {
			t.Errorf("clean file %s does not share the baseline tree", name)
		}
	}
}

func TestStructViewIncrementalBackward(t *testing.T) {
	sys := multiSysSet()
	checkIncremental(t, StructView{}, sys, func(s *confnode.Set) {
		s.Get("my.cnf").ChildByName("mysqld").Child(0).Value = "3307"
	})
	// The untouched file must stay clean.
	fwd, _ := StructView{}.Forward(sys)
	tr := fwd.Tracked()
	tr.Get("my.cnf").ChildByName("mysqld").Child(0).Value = "3307"
	out, err := StructView{}.IncrementalBackward(tr.Seal(), tr, sys)
	if err != nil {
		t.Fatal(err)
	}
	if d := out.Seal(); len(d) != 1 || d[0] != "my.cnf" {
		t.Errorf("sys dirty = %v, want [my.cnf]", d)
	}
}

func TestWordViewIncrementalBackward(t *testing.T) {
	sys := multiSysSet()
	checkIncremental(t, WordView{}, sys, func(s *confnode.Set) {
		// Typo a word in my.cnf only.
		line := s.Get("my.cnf").ChildrenByKind(confnode.KindLine)[0]
		line.ChildrenByKind(confnode.KindWord)[0].Value = "prt"
	})
}

func TestWordViewIncrementalDirtiesOnlyTouchedSysFile(t *testing.T) {
	sys := multiSysSet()
	v := WordView{}
	fwd, _ := v.Forward(sys)
	tr := fwd.Tracked()
	line := tr.Get("other.conf").ChildrenByKind(confnode.KindLine)[1]
	line.ChildrenByKind(confnode.KindWord)[1].Value = "99"
	out, err := v.IncrementalBackward(tr.Seal(), tr, sys)
	if err != nil {
		t.Fatal(err)
	}
	if d := out.Seal(); len(d) != 1 || d[0] != "other.conf" {
		t.Fatalf("sys dirty = %v, want [other.conf]", d)
	}
	if out.Get("my.cnf") != sys.Get("my.cnf") {
		t.Error("my.cnf was rebuilt despite being clean")
	}
	if got := out.Get("other.conf").ChildByName("beta"); got == nil || got.Value != "99 3" {
		t.Errorf("folded beta = %v", got)
	}
}

func TestWordViewIncrementalCrossFileProvenance(t *testing.T) {
	// A line whose provenance is redirected into another file must
	// materialize — and dirty — that file instead of mutating the shared
	// baseline tree, and the result must still match the full Backward
	// fold for fold (in the full path the redirected write into a clean
	// file is overwritten again when that file's own lines are folded).
	redirect := func(s *confnode.Set) {
		otherSrc, _ := s.Get("other.conf").ChildrenByKind(confnode.KindLine)[0].Attr(SrcAttr)
		s.Get("my.cnf").ChildrenByKind(confnode.KindLine)[0].SetAttr(SrcAttr, otherSrc)
	}

	sys := multiSysSet()
	snapshot := sys.Clone()
	checkIncremental(t, WordView{}, sys, redirect)
	if !sys.Equal(snapshot) {
		t.Fatal("baseline system set mutated by cross-file fold")
	}

	// The fold target itself must be reported system-dirty.
	v := WordView{}
	fwd, _ := v.Forward(sys)
	tr := fwd.Tracked()
	redirect(tr)
	out, err := v.IncrementalBackward(tr.Seal(), tr, sys)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range out.Seal() {
		if name == "other.conf" {
			found = true
		}
	}
	if !found {
		t.Error("cross-file fold target not reported dirty")
	}
}
