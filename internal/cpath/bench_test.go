package cpath

import "testing"

func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile("//section:VirtualHost[@arg='*:80']/directive[name='ServerName']"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelect(b *testing.B) {
	root := testTree()
	expr := MustCompile("//directive")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := expr.Select(root); len(got) == 0 {
			b.Fatal("no matches")
		}
	}
}
