// Package cpath implements a small path-query language over confnode
// trees. It plays the role XPath plays in the original ConfErr: error
// templates are parameterized with cpath expressions that select the nodes
// a mutation should target (paper §3.3).
//
// Grammar (informal):
//
//	path  = ["/" | "//"] step { ("/" | "//") step }
//	step  = test { pred }
//	test  = kind [":" name] | "*" [":" name]
//	pred  = "[" int "]"                     positional, 1-based
//	      | "[last()]"                      last among matches
//	      | "[@key]"                        attribute presence
//	      | "[@key='v']" | "[@key!='v']"    attribute comparison
//	      | "[name='v']" | "[name!='v']"    node name comparison
//	      | "[value='v']" | "[value!='v']"  node value comparison
//
// A leading "/" anchors at the root (the query is evaluated against the
// root's children); a leading "//" selects from all descendants. Within a
// path, "/" moves to children and "//" to all descendants of the current
// selection. The kind part matches the node's Kind (by its lower-case
// name); "*" matches any kind. The optional ":name" part matches the
// node's Name exactly ("*" matches any name).
//
// Examples:
//
//	//directive                      every directive in the tree
//	/section:mysqld/directive        directives directly under [mysqld]
//	//directive[@token='value']      directives with a token attribute
//	//section/directive[2]           the 2nd directive of each section
//	//directive[name='Listen']       directives named Listen
package cpath

import (
	"fmt"
	"strconv"
	"strings"

	"conferr/internal/confnode"
)

// Expr is a compiled cpath expression.
type Expr struct {
	src   string
	steps []step
	// rooted is true when the expression began with "/" or "//".
	rooted bool
}

type axis int

const (
	axisChild axis = iota + 1
	axisDescendant
)

type step struct {
	axis  axis
	kind  string // "" or "*" means any kind
	name  string // "" or "*" means any name
	preds []pred
}

type predKind int

const (
	predIndex predKind = iota + 1
	predLast
	predAttrPresent
	predAttrEq
	predAttrNeq
	predNameEq
	predNameNeq
	predValueEq
	predValueNeq
)

type pred struct {
	kind  predKind
	index int
	key   string
	value string
}

// SyntaxError describes a cpath compilation failure.
type SyntaxError struct {
	Expr string
	Pos  int
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("cpath: syntax error in %q at offset %d: %s", e.Expr, e.Pos, e.Msg)
}

// Compile parses a cpath expression.
func Compile(src string) (*Expr, error) {
	p := &parser{src: src}
	e, err := p.parse()
	if err != nil {
		return nil, err
	}
	e.src = src
	return e, nil
}

// MustCompile is like Compile but panics on error. It is intended only for
// package-level expressions whose validity is checked by tests.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// String returns the source of the expression.
func (e *Expr) String() string { return e.src }

// Select evaluates the expression against the tree rooted at root and
// returns the matching nodes in document order (duplicates removed).
func (e *Expr) Select(root *confnode.Node) []*confnode.Node {
	if root == nil || len(e.steps) == 0 {
		return nil
	}
	current := []*confnode.Node{root}
	for _, st := range e.steps {
		current = applyStep(current, st)
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

// SelectSet evaluates the expression against every tree in the set and
// returns all matches, grouped in file order.
func (e *Expr) SelectSet(set *confnode.Set) []*confnode.Node {
	var out []*confnode.Node
	set.Walk(func(_ string, root *confnode.Node) {
		out = append(out, e.Select(root)...)
	})
	return out
}

func applyStep(current []*confnode.Node, st step) []*confnode.Node {
	seen := make(map[*confnode.Node]bool)
	var out []*confnode.Node
	for _, n := range current {
		var candidates []*confnode.Node
		switch st.axis {
		case axisChild:
			candidates = n.Children()
		case axisDescendant:
			n.Walk(func(m *confnode.Node) bool {
				if m != n {
					candidates = append(candidates, m)
				}
				return true
			})
		}
		matched := make([]*confnode.Node, 0, len(candidates))
		for _, c := range candidates {
			if matchTest(c, st) {
				matched = append(matched, c)
			}
		}
		matched = applyPreds(matched, st.preds)
		for _, m := range matched {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}

func matchTest(n *confnode.Node, st step) bool {
	if st.kind != "" && st.kind != "*" {
		k, ok := confnode.KindFromString(st.kind)
		if !ok || n.Kind != k {
			return false
		}
	}
	if st.name != "" && st.name != "*" && n.Name != st.name {
		return false
	}
	return true
}

func applyPreds(nodes []*confnode.Node, preds []pred) []*confnode.Node {
	for _, p := range preds {
		var kept []*confnode.Node
		for i, n := range nodes {
			if matchPred(n, i, len(nodes), p) {
				kept = append(kept, n)
			}
		}
		nodes = kept
	}
	return nodes
}

func matchPred(n *confnode.Node, i, total int, p pred) bool {
	switch p.kind {
	case predIndex:
		return i+1 == p.index
	case predLast:
		return i == total-1
	case predAttrPresent:
		_, ok := n.Attr(p.key)
		return ok
	case predAttrEq:
		v, ok := n.Attr(p.key)
		return ok && v == p.value
	case predAttrNeq:
		v, ok := n.Attr(p.key)
		return !ok || v != p.value
	case predNameEq:
		return n.Name == p.value
	case predNameNeq:
		return n.Name != p.value
	case predValueEq:
		return n.Value == p.value
	case predValueNeq:
		return n.Value != p.value
	default:
		return false
	}
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Expr: p.src, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) consume(prefix string) bool {
	if strings.HasPrefix(p.src[p.pos:], prefix) {
		p.pos += len(prefix)
		return true
	}
	return false
}

func (p *parser) parse() (*Expr, error) {
	e := &Expr{}
	ax := axisChild
	switch {
	case p.consume("//"):
		e.rooted = true
		ax = axisDescendant
	case p.consume("/"):
		e.rooted = true
	default:
		// Relative expressions select among descendants, which matches how
		// templates use them ("anywhere in the tree").
		ax = axisDescendant
	}
	for {
		st, err := p.parseStep(ax)
		if err != nil {
			return nil, err
		}
		e.steps = append(e.steps, st)
		if p.eof() {
			return e, nil
		}
		switch {
		case p.consume("//"):
			ax = axisDescendant
		case p.consume("/"):
			ax = axisChild
		default:
			return nil, p.errf("expected '/' or '//', got %q", p.src[p.pos:])
		}
	}
}

func (p *parser) parseStep(ax axis) (step, error) {
	st := step{axis: ax}
	kind, err := p.parseIdentOrStar()
	if err != nil {
		return st, err
	}
	st.kind = kind
	if p.consume(":") {
		name, err := p.parseNamePart()
		if err != nil {
			return st, err
		}
		st.name = name
	}
	for p.peek() == '[' {
		pr, err := p.parsePred()
		if err != nil {
			return st, err
		}
		st.preds = append(st.preds, pr)
	}
	return st, nil
}

func identChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.'
}

func (p *parser) parseIdentOrStar() (string, error) {
	if p.consume("*") {
		return "*", nil
	}
	start := p.pos
	for !p.eof() && identChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected node test")
	}
	return p.src[start:p.pos], nil
}

// parseNamePart parses the name component after ':'; it may be an ident, a
// '*', or a quoted string (allowing names with special characters).
func (p *parser) parseNamePart() (string, error) {
	if p.peek() == '\'' || p.peek() == '"' {
		return p.parseQuoted()
	}
	return p.parseIdentOrStar()
}

func (p *parser) parseQuoted() (string, error) {
	quote := p.peek()
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != quote {
		p.pos++
	}
	if p.eof() {
		return "", p.errf("unterminated string")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

func (p *parser) parsePred() (pred, error) {
	if !p.consume("[") {
		return pred{}, p.errf("expected '['")
	}
	var pr pred
	switch {
	case p.consume("last()"):
		pr = pred{kind: predLast}
	case p.peek() >= '0' && p.peek() <= '9':
		start := p.pos
		for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		idx, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil || idx < 1 {
			return pred{}, p.errf("bad index %q", p.src[start:p.pos])
		}
		pr = pred{kind: predIndex, index: idx}
	case p.peek() == '@':
		p.pos++
		key, err := p.parseIdentOrStar()
		if err != nil {
			return pred{}, err
		}
		pr = pred{key: key}
		switch {
		case p.consume("!="):
			pr.kind = predAttrNeq
		case p.consume("="):
			pr.kind = predAttrEq
		default:
			pr.kind = predAttrPresent
		}
		if pr.kind != predAttrPresent {
			v, err := p.parseQuotedValue()
			if err != nil {
				return pred{}, err
			}
			pr.value = v
		}
	default:
		field, err := p.parseIdentOrStar()
		if err != nil {
			return pred{}, err
		}
		var neq bool
		switch {
		case p.consume("!="):
			neq = true
		case p.consume("="):
		default:
			return pred{}, p.errf("expected '=' or '!=' after %q", field)
		}
		v, err := p.parseQuotedValue()
		if err != nil {
			return pred{}, err
		}
		switch field {
		case "name":
			pr = pred{value: v, kind: predNameEq}
			if neq {
				pr.kind = predNameNeq
			}
		case "value":
			pr = pred{value: v, kind: predValueEq}
			if neq {
				pr.kind = predValueNeq
			}
		default:
			return pred{}, p.errf("unknown predicate field %q", field)
		}
	}
	if !p.consume("]") {
		return pred{}, p.errf("expected ']'")
	}
	return pr, nil
}

func (p *parser) parseQuotedValue() (string, error) {
	if p.peek() != '\'' && p.peek() != '"' {
		return "", p.errf("expected quoted value")
	}
	return p.parseQuoted()
}
