package cpath

import (
	"errors"
	"strings"
	"testing"

	"conferr/internal/confnode"
)

// testTree builds:
//
//	document(httpd.conf)
//	  directive(Listen) = 80
//	  section(VirtualHost) @arg=*:80
//	    directive(ServerName) = a.example.com
//	    directive(DocumentRoot) = /var/www/a
//	  section(VirtualHost) @arg=*:81
//	    directive(ServerName) = b.example.com
//	    section(Directory) @arg=/var/www/b
//	      directive(Options) = None
func testTree() *confnode.Node {
	doc := confnode.New(confnode.KindDocument, "httpd.conf")
	doc.Append(confnode.NewValued(confnode.KindDirective, "Listen", "80"))
	v1 := confnode.New(confnode.KindSection, "VirtualHost")
	v1.SetAttr("arg", "*:80")
	v1.Append(
		confnode.NewValued(confnode.KindDirective, "ServerName", "a.example.com"),
		confnode.NewValued(confnode.KindDirective, "DocumentRoot", "/var/www/a"),
	)
	v2 := confnode.New(confnode.KindSection, "VirtualHost")
	v2.SetAttr("arg", "*:81")
	dir := confnode.New(confnode.KindSection, "Directory")
	dir.SetAttr("arg", "/var/www/b")
	dir.Append(confnode.NewValued(confnode.KindDirective, "Options", "None"))
	v2.Append(
		confnode.NewValued(confnode.KindDirective, "ServerName", "b.example.com"),
		dir,
	)
	doc.Append(v1, v2)
	return doc
}

func names(nodes []*confnode.Node) []string {
	var out []string
	for _, n := range nodes {
		label := n.Name
		if n.Value != "" {
			label += "=" + n.Value
		}
		out = append(out, label)
	}
	return out
}

func selectNames(t *testing.T, expr string, root *confnode.Node) []string {
	t.Helper()
	e, err := Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	return names(e.Select(root))
}

func TestSelect(t *testing.T) {
	root := testTree()
	tests := []struct {
		expr string
		want []string
	}{
		{"//directive", []string{
			"Listen=80", "ServerName=a.example.com", "DocumentRoot=/var/www/a",
			"ServerName=b.example.com", "Options=None",
		}},
		{"/directive", []string{"Listen=80"}},
		{"/section", []string{"VirtualHost", "VirtualHost"}},
		{"/section/directive", []string{
			"ServerName=a.example.com", "DocumentRoot=/var/www/a",
			"ServerName=b.example.com",
		}},
		{"/section//directive", []string{
			"ServerName=a.example.com", "DocumentRoot=/var/www/a",
			"ServerName=b.example.com", "Options=None",
		}},
		{"//section:Directory/directive", []string{"Options=None"}},
		{"//directive:ServerName", []string{"ServerName=a.example.com", "ServerName=b.example.com"}},
		{"//directive[name='Listen']", []string{"Listen=80"}},
		{"//directive[name!='ServerName']", []string{"Listen=80", "DocumentRoot=/var/www/a", "Options=None"}},
		{"//directive[value='None']", []string{"Options=None"}},
		{"//directive[value!='None']", []string{
			"Listen=80", "ServerName=a.example.com", "DocumentRoot=/var/www/a",
			"ServerName=b.example.com",
		}},
		{"//section[@arg='*:81']", []string{"VirtualHost"}},
		{"//section[@arg]", []string{"VirtualHost", "VirtualHost", "Directory"}},
		{"//section[@arg!='*:81']", []string{"VirtualHost", "Directory"}},
		{"//section[@missing]", nil},
		{"/section[1]", []string{"VirtualHost"}},
		{"/section[2]/directive[1]", []string{"ServerName=b.example.com"}},
		{"/section[last()]", []string{"VirtualHost"}},
		{"//directive[last()]", []string{"Options=None"}}, // single origin: overall last; see TestLastSemantics
		{"/*", []string{"Listen=80", "VirtualHost", "VirtualHost"}},
		{"//*:ServerName", []string{"ServerName=a.example.com", "ServerName=b.example.com"}},
		{"/section:'VirtualHost'[@arg='*:80']/directive", []string{
			"ServerName=a.example.com", "DocumentRoot=/var/www/a",
		}},
		{"//section:Nope", nil},
		{"word", nil},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			got := selectNames(t, tt.expr, root)
			if len(got) == 0 && len(tt.want) == 0 {
				return
			}
			if len(got) != len(tt.want) {
				t.Fatalf("Select(%q) = %v, want %v", tt.expr, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("Select(%q) = %v, want %v", tt.expr, got, tt.want)
				}
			}
		})
	}
}

// The "[last()]" semantics: predicates apply within each step evaluation
// per origin node. With axisDescendant from the root there is a single
// origin, so [last()] picks the overall last directive.
func TestLastSemantics(t *testing.T) {
	root := testTree()
	got := selectNames(t, "//directive[last()]", root)
	// Single origin (root), so the last matched descendant directive wins.
	want := []string{"Options=None"}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRelativeExprIsDescendant(t *testing.T) {
	root := testTree()
	got := selectNames(t, "directive:Options", root)
	if len(got) != 1 || got[0] != "Options=None" {
		t.Fatalf("relative select = %v", got)
	}
}

func TestSelectSet(t *testing.T) {
	set := confnode.NewSet()
	set.Put("a", testTree())
	b := confnode.New(confnode.KindDocument, "b")
	b.Append(confnode.NewValued(confnode.KindDirective, "port", "5432"))
	set.Put("b", b)
	e := MustCompile("//directive")
	got := e.SelectSet(set)
	if len(got) != 6 {
		t.Fatalf("SelectSet matched %d nodes, want 6", len(got))
	}
	if got[5].Name != "port" {
		t.Errorf("file order not preserved: last = %s", got[5].Name)
	}
}

func TestSelectNilAndEmpty(t *testing.T) {
	e := MustCompile("//directive")
	if e.Select(nil) != nil {
		t.Error("Select(nil) should be nil")
	}
}

func TestDuplicateElimination(t *testing.T) {
	// With nested sections, //section//directive could visit the same
	// node via two origins; ensure results are unique.
	root := testTree()
	e := MustCompile("//section//directive")
	got := e.Select(root)
	seen := map[*confnode.Node]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatalf("duplicate node in results: %s", n)
		}
		seen[n] = true
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"/",
		"//",
		"/section[",
		"/section[0]",
		"/section[abc",
		"/section[@]",
		"/section[@a='x'",
		"/section[@a=x]",
		"/section[foo='x']",
		"/section[name]",
		"/section[name='x]",
		"/section:'unterminated",
		"/section$",
		"/section/",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Compile(%q) error is %T, want *SyntaxError", src, err)
			} else if se.Expr != src {
				t.Errorf("SyntaxError.Expr = %q, want %q", se.Expr, src)
			}
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Compile("/section[")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "cpath: syntax error") {
		t.Errorf("error message %q", err.Error())
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on bad input")
		}
	}()
	MustCompile("[[")
}

func TestExprString(t *testing.T) {
	const src = "//directive[name='Listen']"
	if got := MustCompile(src).String(); got != src {
		t.Errorf("String() = %q", got)
	}
}

func TestKindAndNameStarEquivalence(t *testing.T) {
	root := testTree()
	a := selectNames(t, "//*", root)
	b := selectNames(t, "//*:*", root)
	if len(a) != len(b) {
		t.Fatalf("//* selected %d, //*:* selected %d", len(a), len(b))
	}
}

func TestUnknownKindNameMatchesNothing(t *testing.T) {
	root := testTree()
	if got := selectNames(t, "//frobnicator", root); got != nil {
		t.Errorf("unknown kind matched %v", got)
	}
}
