// Package dist distributes ConfErr campaigns across worker processes and
// machines. A campaign worker daemon (Server, hosted by cmd/sutd -serve)
// accepts shard specifications over a line-delimited JSON TCP protocol,
// re-derives its slice of the faultload locally — generation is a pure
// function of (Seed, shard k of n), so no scenario ever crosses the wire
// — and streams sequence-tagged records back. A Coordinator schedules
// shards across workers, retries failed or stalled shards on other
// workers with capped exponential backoff, and merges the shard streams
// into one deterministic, gap-checked profile that is byte-identical to
// a single-process run of the same campaign. Checkpoint/resume is nearly
// free: the merged stream's flush front is one sequence number, and a
// resumed coordinator re-requests each shard from that front.
package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"conferr/internal/profile"
)

// CampaignSpec describes one campaign completely enough for a remote
// worker to re-derive any shard of its faultload: the registered target
// and generator names, the generator parameters, and the run flags that
// shape the stream. It deliberately mirrors one `conferr matrix` cell —
// the single-process run distributed campaigns must be byte-identical to.
type CampaignSpec struct {
	// System is the registered target name.
	System string `json:"system"`
	// Plugin is the registered generator name.
	Plugin string `json:"plugin"`
	// Seed makes the faultload reproducible — the purity anchor that lets
	// every worker re-derive the identical stream.
	Seed int64 `json:"seed"`
	// PerModel, PerDirective and PerClass bound the generator (see
	// GeneratorOptions).
	PerModel     int `json:"per_model,omitempty"`
	PerDirective int `json:"per_directive,omitempty"`
	PerClass     int `json:"per_class,omitempty"`
	// Rounds, Sample and Limit wrap the generator exactly like a matrix
	// cell: replay Rounds times, reservoir-sample Sample, cap at Limit —
	// applied in that order.
	Rounds int `json:"rounds,omitempty"`
	Sample int `json:"sample,omitempty"`
	Limit  int `json:"limit,omitempty"`
	// Port is the primary target port the faultload embeds; it must match
	// the single-process run being reproduced (matrix: -base-port + cell
	// index).
	Port int `json:"port,omitempty"`
	// Lifecycle selects the worker SUT lifecycle: "cold" (or empty),
	// "reload", or "validate".
	Lifecycle string `json:"lifecycle,omitempty"`
	// Memnet serves worker SUTs over the in-process transport instead of
	// kernel TCP.
	Memnet bool `json:"memnet,omitempty"`
	// KeepGoing records infrastructure errors instead of aborting the
	// shard.
	KeepGoing bool `json:"keep_going,omitempty"`
	// NoDuration zeroes each record's duration before encoding, making
	// equivalent runs byte-comparable.
	NoDuration bool `json:"no_duration,omitempty"`
	// TallyOnly selects the summary sink mode: the worker folds its
	// shard's records into an O(1) Summary and sends only that — no
	// record frames — for campaigns whose output is a scorecard, not a
	// profile.
	TallyOnly bool `json:"tally_only,omitempty"`
}

// ProtocolVersion is the dist wire protocol's version. It is bumped on
// any incompatible change to the request or frame encoding, so a
// coordinator and a worker from different builds fail fast with a clear
// complaint instead of mis-merging streams.
const ProtocolVersion = 1

// ShardRequest is the single client→worker message: run shard Shard of
// Shards of the described campaign, skipping sequences below StartSeq
// (the coordinator's flush front on resume and retry). Proto carries the
// sender's ProtocolVersion; workers reject mismatches.
type ShardRequest struct {
	Type     string       `json:"type"` // "run"
	Proto    int          `json:"proto"`
	Campaign CampaignSpec `json:"campaign"`
	Shard    int          `json:"shard"`
	Shards   int          `json:"shards"`
	StartSeq int          `json:"start_seq,omitempty"`
	// ExperimentTimeout and PhaseTimeout (nanoseconds) arm the worker's
	// phase watchdog, inherited from the coordinator so every shard runs
	// under the same deadlines as the single-process run it reproduces.
	ExperimentTimeout time.Duration `json:"experiment_timeout,omitempty"`
	PhaseTimeout      time.Duration `json:"phase_timeout,omitempty"`
}

// Frame is one worker→coordinator message. Type selects the variant:
//
//   - "rec": one completed experiment; Seq is the record's global
//     sequence number and Rec the fully rendered JSONL profile line
//     (without trailing newline), byte-identical to what a
//     single-process JSONL sink would emit at that sequence.
//   - "progress": periodic heartbeat; Seq is the highest contiguous
//     sequence the shard has completed (the worker runs its shard in
//     order, so this is simply the last sequence done). Liveness signal:
//     a coordinator that stops seeing frames declares the shard stalled.
//   - "done": the shard finished; Records is the shard's total scenario
//     count (skipped-by-StartSeq included) and Summary the outcome tally
//     of the experiments this run executed.
//   - "error": the shard failed; Err carries the complaint.
type Frame struct {
	Type    string           `json:"type"`
	Seq     int              `json:"seq,omitempty"`
	Rec     json.RawMessage  `json:"rec,omitempty"`
	Records int              `json:"records,omitempty"`
	Summary *profile.Summary `json:"summary,omitempty"`
	Err     string           `json:"err,omitempty"`
}

// Frame and request type tags.
const (
	TypeRun      = "run"
	TypeRec      = "rec"
	TypeProgress = "progress"
	TypeDone     = "done"
	TypeError    = "error"
)

// maxLine bounds one protocol line. Record lines embed configuration
// error details, which are bounded by the mutated files; 16 MB matches
// the JSONL scanner's ceiling.
const maxLine = 16 * 1024 * 1024

// lineReader decodes line-delimited JSON messages.
type lineReader struct {
	sc *bufio.Scanner
}

func newLineReader(r io.Reader) *lineReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	return &lineReader{sc: sc}
}

// next decodes the next non-empty line into v. io.EOF reports a cleanly
// exhausted stream.
func (l *lineReader) next(v any) error {
	for l.sc.Scan() {
		line := l.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := json.Unmarshal(line, v); err != nil {
			return fmt.Errorf("dist: decoding message: %w", err)
		}
		return nil
	}
	if err := l.sc.Err(); err != nil {
		return err
	}
	return io.EOF
}

// writeMsg encodes v as one JSON line. Callers serialize access to w.
func writeMsg(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dist: encoding message: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("dist: writing message: %w", err)
	}
	return nil
}

// Validate rejects malformed shard requests before any campaign state is
// built.
func (r *ShardRequest) Validate() error {
	if r.Type != TypeRun {
		return fmt.Errorf("dist: unknown request type %q", r.Type)
	}
	if r.Proto != ProtocolVersion {
		if r.Proto == 0 {
			return fmt.Errorf("dist: request carries no protocol version (worker speaks v%d); coordinator predates versioned requests — upgrade it", ProtocolVersion)
		}
		return fmt.Errorf("dist: protocol version mismatch: request is v%d, worker speaks v%d", r.Proto, ProtocolVersion)
	}
	if r.ExperimentTimeout < 0 || r.PhaseTimeout < 0 {
		return fmt.Errorf("dist: negative watchdog timeout in shard request")
	}
	if r.Shards <= 0 || r.Shard < 0 || r.Shard >= r.Shards {
		return fmt.Errorf("dist: invalid shard %d of %d", r.Shard, r.Shards)
	}
	if r.StartSeq < 0 {
		return fmt.Errorf("dist: negative start sequence %d", r.StartSeq)
	}
	if r.Campaign.System == "" || r.Campaign.Plugin == "" {
		return fmt.Errorf("dist: shard request missing system or plugin")
	}
	return nil
}
