package dist

import "time"

// RetryPolicy shapes how the coordinator retries a failed shard: up to
// MaxAttempts connection-established attempts per shard, with capped
// exponential backoff between attempts. Dial failures are charged to the
// worker endpoint (see endpoint retirement in the coordinator), not to
// the shard, so one dead worker cannot burn a shard's attempt budget
// while its siblings are busy.
type RetryPolicy struct {
	// MaxAttempts is the per-shard attempt cap (0 selects the default 5).
	MaxAttempts int
	// BaseBackoff is the first retry's delay (0 selects 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 selects 5s).
	MaxBackoff time.Duration
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	return p
}

// Backoff returns the delay before retry attempt n (1-based): base·2^(n-1),
// capped at MaxBackoff.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	d := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}
