package dist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteCheckpointAtomic: a failed checkpoint write — the temp file
// cannot even be created — leaves the previous checkpoint intact, and a
// torn (truncated) checkpoint file refuses to load instead of resuming
// from garbage.
func TestWriteCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	good := Checkpoint{System: "nginx", Plugin: "typo", Seed: 7, Shards: 3, Front: 41}
	if err := writeCheckpoint(path, good); err != nil {
		t.Fatal(err)
	}

	// A directory squatting on the temp path makes the next write fail
	// before the rename — the committed checkpoint must survive.
	if err := os.Mkdir(path+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Front = 99
	if err := writeCheckpoint(path, bad); err == nil {
		t.Fatal("checkpoint write through a squatting temp path succeeded")
	}
	got, err := loadCheckpoint(path)
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after failed write: %v", err)
	}
	if got != good {
		t.Fatalf("checkpoint after failed write = %+v, want the previous %+v", got, good)
	}
	if err := os.Remove(path + ".tmp"); err != nil {
		t.Fatal(err)
	}

	// A torn file — the crash window writeCheckpoint's fsync+rename is
	// built to close — must be rejected, not half-parsed.
	if err := os.WriteFile(path, []byte(`{"system":"nginx","plugin":"typo","se`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); err == nil || !strings.Contains(err.Error(), "decoding checkpoint") {
		t.Fatalf("torn checkpoint loaded: err = %v", err)
	}
}

// TestShardRequestProtocolValidation: version gating happens before any
// campaign state is touched, with both versions named.
func TestShardRequestProtocolValidation(t *testing.T) {
	req := ShardRequest{
		Type: TypeRun, Proto: ProtocolVersion,
		Campaign: CampaignSpec{System: "s", Plugin: "p"},
		Shard:    0, Shards: 1,
	}
	if err := req.Validate(); err != nil {
		t.Fatalf("current-version request rejected: %v", err)
	}
	req.Proto = ProtocolVersion + 1
	err := req.Validate()
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("future-version request accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "v2") || !strings.Contains(err.Error(), "v1") {
		t.Fatalf("mismatch error does not name both versions: %v", err)
	}
	req.Proto = 0
	if err := req.Validate(); err == nil || !strings.Contains(err.Error(), "no protocol version") {
		t.Fatalf("versionless request accepted: %v", err)
	}
	req.Proto = ProtocolVersion
	req.PhaseTimeout = -1
	if err := req.Validate(); err == nil {
		t.Fatal("negative watchdog timeout accepted")
	}
}
