package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"conferr/internal/profile"
)

// Coordinator schedules the Shards shards of one campaign across worker
// daemons, retries failed or stalled shards with capped exponential
// backoff, and merges the shard streams into one deterministic,
// gap-checked profile. Records are flushed in exact sequence order, so
// the output is byte-identical to a single-process run of the same
// campaign, and the merge's flush front — one sequence number — is a
// complete checkpoint: a resumed coordinator re-requests every shard
// from that front and workers skip the prefix without re-injecting it.
type Coordinator struct {
	// Workers are the worker daemon endpoints (host:port).
	Workers []string
	// Shards is the shard count (0 selects one per worker). More shards
	// than workers is normal — it is the unit of retry and rebalancing.
	Shards int
	// Spec describes the campaign every worker re-derives its slice of.
	Spec CampaignSpec
	// Out, when non-nil, receives the merged record stream. Otherwise
	// OutPath is created (or, on resume, reconciled and appended to).
	Out     io.Writer
	OutPath string
	// OutFactory, when non-nil, takes precedence over Out/OutPath and
	// builds the output stack for a run resuming at startSeq: w receives
	// the merged JSONL lines (one line per Write), flush makes flushed
	// records durable before each checkpoint, and finish(complete) is
	// called exactly once at the end — complete reports whether the
	// campaign finished, letting format-aware outputs (cprof) finalize
	// their index on success while leaving a resumable prefix on
	// failure. The factory owns reconciling any existing file to
	// startSeq records.
	OutFactory func(startSeq int) (w io.Writer, flush func() error, finish func(complete bool) error, err error)
	// CheckpointPath enables checkpointing ("" disables). Ignored in
	// tally mode, where there is no record stream to checkpoint.
	CheckpointPath string
	// Resume loads the checkpoint and completes only the missing
	// sequence range. A missing checkpoint file degrades to a fresh run.
	Resume bool
	// DialTimeout bounds connection establishment (0 selects 5s).
	DialTimeout time.Duration
	// StallTimeout bounds the gap between worker frames (0 selects 15s);
	// heartbeats keep a healthy connection under it, so expiry means the
	// worker died or wedged and the shard is reassigned.
	StallTimeout time.Duration
	// Retry shapes per-shard retries.
	Retry RetryPolicy
	// CheckpointEvery throttles checkpoint writes to one per this many
	// flushed records (0 selects 64).
	CheckpointEvery int
	// SyncOutput fsyncs the OutPath file on every flush (each checkpoint
	// and at the end), so a host crash cannot leave the checkpoint
	// claiming lines the output lost. OutFactory-built outputs own their
	// durability (cmd/conferr wires cprof's Sync for -fsync).
	SyncOutput bool
	// ExperimentTimeout and PhaseTimeout arm the workers' phase watchdog:
	// every shard request carries them, so remote experiments run under
	// the same deadlines as the single-process run they reproduce.
	ExperimentTimeout time.Duration
	PhaseTimeout      time.Duration
	// Logf, when non-nil, receives scheduling diagnostics.
	Logf func(format string, args ...any)
}

// Result summarizes a completed distributed campaign.
type Result struct {
	// Records is the campaign's total scenario count (the merged stream
	// is exactly sequences 0..Records-1).
	Records int
	// Summary tallies the experiments executed in this run — on resume,
	// only the completed missing range.
	Summary profile.Summary
	// Duplicates counts re-delivered records dropped by the merger.
	Duplicates int
	// Retries counts shard attempts beyond each shard's first.
	Retries int
	// StartSeq is the resume front this run started from (0 when fresh).
	StartSeq int
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// coordState is the shared mutable half of a run: the merger, the tally,
// completion bookkeeping, and the failure latch.
type coordState struct {
	mu         sync.Mutex
	merger     *profile.SeqMerger
	flush      func() error
	summary    profile.Summary
	shardDone  map[int]bool
	total      int // sum of done-frame Records across shards
	retries    int
	live       int // endpoints not yet retired
	err        error
	doneCh     chan struct{}
	cancel     context.CancelFunc
	cpPath     string
	cpEvery    int
	cpTemplate Checkpoint
	cpLast     int // front at last checkpoint write
	logf       func(string, ...any)
}

func (st *coordState) fail(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.failLocked(err)
}

func (st *coordState) failLocked(err error) {
	if st.err == nil {
		st.err = err
		close(st.doneCh)
		st.cancel()
	}
}

// addRec feeds one record frame to the merger, checkpointing when the
// flush front has advanced enough.
func (st *coordState) addRec(seq int, line []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.merger == nil {
		return fmt.Errorf("dist: record frame in tally mode (seq %d)", seq)
	}
	if err := st.merger.Add(seq, line); err != nil {
		// Merge errors (corruption, write failure) poison the whole run,
		// not just this attempt.
		st.failLocked(err)
		return err
	}
	if st.cpPath != "" && st.merger.Front()-st.cpLast >= st.cpEvery {
		st.checkpointLocked()
	}
	return nil
}

// checkpointLocked persists the current flush front. The output is
// flushed first so the checkpoint never claims lines the file lacks.
func (st *coordState) checkpointLocked() {
	if st.flush != nil {
		if err := st.flush(); err != nil {
			st.failLocked(err)
			return
		}
	}
	cp := st.cpTemplate
	cp.Front = st.merger.Front()
	if err := writeCheckpoint(st.cpPath, cp); err != nil {
		st.logf("dist: checkpoint: %v", err)
		return
	}
	st.cpLast = cp.Front
}

// finishShard records one shard's completion; returns true when it was
// the campaign's last.
func (st *coordState) finishShard(shard, records int, sum *profile.Summary, shards int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.shardDone[shard] {
		return false
	}
	st.shardDone[shard] = true
	st.total += records
	if sum != nil {
		st.summary.Merge(*sum)
	}
	if len(st.shardDone) == shards {
		if st.err == nil {
			close(st.doneCh)
		}
		return true
	}
	return false
}

func (st *coordState) retire(endpoint string, shards int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.live--
	st.logf("dist: retiring worker %s (%d live)", endpoint, st.live)
	if st.live == 0 && len(st.shardDone) < shards {
		st.failLocked(errors.New("dist: all workers unavailable with shards outstanding"))
	}
}

// shardTask is one shard's place in the scheduling queue. attempts
// counts established-connection failures only; dial failures are charged
// to the endpoint, not the shard.
type shardTask struct {
	shard    int
	attempts int
	lastErr  error
}

// Run executes the campaign and blocks until it completes, fails, or ctx
// is cancelled.
func (c *Coordinator) Run(ctx context.Context) (Result, error) {
	if len(c.Workers) == 0 {
		return Result{}, errors.New("dist: no workers")
	}
	shards := c.Shards
	if shards <= 0 {
		shards = len(c.Workers)
	}
	retry := c.Retry.withDefaults()
	dialTO := c.DialTimeout
	if dialTO <= 0 {
		dialTO = 5 * time.Second
	}
	stallTO := c.StallTimeout
	if stallTO <= 0 {
		stallTO = 15 * time.Second
	}
	cpEvery := c.CheckpointEvery
	if cpEvery <= 0 {
		cpEvery = 64
	}
	tally := c.Spec.TallyOnly
	cpPath := c.CheckpointPath
	if tally {
		cpPath = "" // no record stream, nothing to checkpoint
	}

	// Resume: the checkpointed flush front is the whole story — every
	// shard is re-requested from it, and the output file is reconciled to
	// exactly that many lines (a longer file is truncated; the dropped
	// tail is re-fetched deterministically).
	startSeq := 0
	if c.Resume && cpPath != "" {
		cp, err := loadCheckpoint(cpPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			c.logf("dist: no checkpoint at %s, starting fresh", cpPath)
		case err != nil:
			return Result{}, err
		default:
			if err := cp.matches(c.Spec, shards); err != nil {
				return Result{}, err
			}
			startSeq = cp.Front
			c.logf("dist: resuming from sequence %d", startSeq)
		}
	}

	var (
		w      io.Writer
		flush  func() error
		finish func(complete bool) error
	)
	switch {
	case tally:
	case c.OutFactory != nil:
		var err error
		w, flush, finish, err = c.OutFactory(startSeq)
		if err != nil {
			return Result{}, err
		}
	case c.Out != nil:
		w = c.Out
	case c.OutPath != "":
		if startSeq > 0 {
			if err := reconcileOutput(c.OutPath, startSeq); err != nil {
				return Result{}, err
			}
		}
		mode := os.O_CREATE | os.O_WRONLY
		if startSeq > 0 {
			mode |= os.O_APPEND
		} else {
			mode |= os.O_TRUNC
		}
		f, err := os.OpenFile(c.OutPath, mode, 0o644)
		if err != nil {
			return Result{}, fmt.Errorf("dist: opening output: %w", err)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		w = bw
		flush = bw.Flush
		if c.SyncOutput {
			flush = func() error {
				if err := bw.Flush(); err != nil {
					return err
				}
				return f.Sync()
			}
		}
	default:
		w = io.Discard
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := &coordState{
		flush:     flush,
		shardDone: make(map[int]bool, shards),
		live:      len(c.Workers),
		doneCh:    make(chan struct{}),
		cancel:    cancel,
		cpPath:    cpPath,
		cpEvery:   cpEvery,
		cpTemplate: Checkpoint{
			System: c.Spec.System,
			Plugin: c.Spec.Plugin,
			Seed:   c.Spec.Seed,
			Shards: shards,
		},
		cpLast: startSeq,
		logf:   c.logf,
	}
	if !tally {
		st.merger = profile.NewSeqMerger(w, startSeq)
	}
	if cpPath != "" {
		// Seed the checkpoint immediately: a coordinator killed before any
		// record flushes still leaves a resumable (front = startSeq) file,
		// and identity mismatches surface on the next resume, not silently.
		cp := st.cpTemplate
		cp.Front = startSeq
		if err := writeCheckpoint(cpPath, cp); err != nil {
			return Result{}, err
		}
	}

	tasks := make(chan *shardTask, shards)
	for i := 0; i < shards; i++ {
		tasks <- &shardTask{shard: i}
	}

	var wg sync.WaitGroup
	for _, ep := range c.Workers {
		wg.Add(1)
		go func(endpoint string) {
			defer wg.Done()
			c.serveEndpoint(runCtx, endpoint, st, tasks, shards, startSeq, retry, dialTO, stallTO)
		}(ep)
	}

	select {
	case <-st.doneCh:
	case <-ctx.Done():
		st.fail(ctx.Err())
	}
	cancel()
	wg.Wait()

	st.mu.Lock()
	runErr := st.err
	retries := st.retries
	total := st.total
	summary := st.summary
	merger := st.merger
	st.mu.Unlock()

	if flush != nil {
		if err := flush(); err != nil && runErr == nil {
			runErr = fmt.Errorf("dist: flushing output: %w", err)
		}
	}
	res := Result{Records: total, Summary: summary, Retries: retries, StartSeq: startSeq}
	if merger != nil {
		res.Duplicates = merger.Duplicates()
	}
	if runErr == nil && merger != nil {
		if err := merger.GapCheck(total); err != nil {
			runErr = err
		}
	}
	if finish != nil {
		if err := finish(runErr == nil); err != nil && runErr == nil {
			runErr = fmt.Errorf("dist: finishing output: %w", err)
		}
	}
	if runErr != nil {
		// Leave the checkpoint behind: the run is resumable from the
		// flush front it recorded.
		return res, runErr
	}
	if cpPath != "" {
		if err := os.Remove(cpPath); err != nil && !errors.Is(err, os.ErrNotExist) {
			c.logf("dist: removing checkpoint: %v", err)
		}
	}
	return res, nil
}

// serveEndpoint is one worker endpoint's scheduling loop: pull a shard,
// attempt it, and classify failures — dial failures retire the endpoint
// after a streak, established-connection failures charge the shard's
// attempt budget and requeue it after backoff for any endpoint to pick
// up.
func (c *Coordinator) serveEndpoint(ctx context.Context, endpoint string, st *coordState, tasks chan *shardTask, shards, startSeq int, retry RetryPolicy, dialTO, stallTO time.Duration) {
	dialFails := 0
	requeue := func(task *shardTask, after time.Duration) {
		if after <= 0 {
			select {
			case tasks <- task:
			case <-st.doneCh:
			}
			return
		}
		go func() {
			t := time.NewTimer(after)
			defer t.Stop()
			select {
			case <-t.C:
				select {
				case tasks <- task:
				case <-st.doneCh:
				}
			case <-st.doneCh:
			}
		}()
	}
	for {
		var task *shardTask
		select {
		case <-st.doneCh:
			return
		case task = <-tasks:
		}
		err, dialErr := c.attempt(ctx, endpoint, st, task, shards, startSeq, stallTO, dialTO)
		if err == nil {
			dialFails = 0
			continue
		}
		if ctx.Err() != nil {
			requeue(task, 0)
			return
		}
		if dialErr {
			// The worker would not even answer the phone: hand the shard
			// straight back for a healthier endpoint, throttle this one, and
			// retire it after a streak.
			requeue(task, 0)
			dialFails++
			c.logf("dist: %s: dial failed (%d consecutive): %v", endpoint, dialFails, err)
			if dialFails >= retry.MaxAttempts {
				st.retire(endpoint, shards)
				return
			}
			t := time.NewTimer(retry.Backoff(dialFails))
			select {
			case <-t.C:
			case <-st.doneCh:
				t.Stop()
				return
			}
			t.Stop()
			continue
		}
		dialFails = 0
		task.attempts++
		task.lastErr = err
		st.mu.Lock()
		st.retries++
		st.mu.Unlock()
		c.logf("dist: shard %d attempt %d failed on %s: %v", task.shard, task.attempts, endpoint, err)
		if task.attempts >= retry.MaxAttempts {
			st.fail(fmt.Errorf("dist: shard %d failed after %d attempts: %w", task.shard, task.attempts, err))
			return
		}
		requeue(task, retry.Backoff(task.attempts))
	}
}

// attempt runs one shard on one endpoint: dial, send the request, and
// consume frames until done or failure. The second return reports a dial
// failure (endpoint's fault) as opposed to an established-connection one
// (charged to the shard's attempt budget).
func (c *Coordinator) attempt(ctx context.Context, endpoint string, st *coordState, task *shardTask, shards, startSeq int, stallTO, dialTO time.Duration) (err error, dialErr bool) {
	d := net.Dialer{Timeout: dialTO}
	conn, cerr := d.DialContext(ctx, "tcp", endpoint)
	if cerr != nil {
		return cerr, true
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()

	req := ShardRequest{
		Type:     TypeRun,
		Proto:    ProtocolVersion,
		Campaign: c.Spec,
		Shard:    task.shard,
		Shards:   shards,
		// Retries restart from the same resume front as the original
		// attempt, never the live merge front: the done-frame Summary must
		// tally every shard-owned sequence past startSeq exactly once, and
		// the merger dedups whatever the retry re-delivers.
		StartSeq:          startSeq,
		ExperimentTimeout: c.ExperimentTimeout,
		PhaseTimeout:      c.PhaseTimeout,
	}
	if err := writeMsg(conn, req); err != nil {
		return err, false
	}

	lr := newLineReader(conn)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(stallTO)); err != nil {
			return err, false
		}
		var f Frame
		if err := lr.next(&f); err != nil {
			if errors.Is(err, io.EOF) {
				return errors.New("dist: worker closed connection mid-shard"), false
			}
			if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
				return fmt.Errorf("dist: shard stalled: no frame for %v", stallTO), false
			}
			return err, false
		}
		switch f.Type {
		case TypeRec:
			if err := st.addRec(f.Seq, f.Rec); err != nil {
				return err, false
			}
		case TypeProgress:
			// Liveness only; arrival already reset the stall deadline.
		case TypeDone:
			st.finishShard(task.shard, f.Records, f.Summary, shards)
			c.logf("dist: shard %d/%d done on %s (%d records)", task.shard, shards, endpoint, f.Records)
			return nil, false
		case TypeError:
			return fmt.Errorf("dist: worker error: %s", f.Err), false
		default:
			return fmt.Errorf("dist: unknown frame type %q", f.Type), false
		}
	}
}
