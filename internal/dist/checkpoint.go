package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint is the tiny resume state of a distributed campaign: the
// campaign's identity (so a resume never splices two different runs
// together) and the merge's flush front. Everything else is re-derivable
// — a resumed coordinator re-requests every shard from Front and workers
// regenerate without re-injecting the prefix.
type Checkpoint struct {
	System string `json:"system"`
	Plugin string `json:"plugin"`
	Seed   int64  `json:"seed"`
	Shards int    `json:"shards"`
	Front  int    `json:"front"`
}

// writeCheckpoint persists cp crash-safely: the bytes are fsynced to a
// temp file before the atomic rename, and the directory entry is fsynced
// after it. A coordinator killed mid-write leaves the previous checkpoint
// intact; a host crash right after a successful return cannot lose the
// new one — which is what lets `dist -resume` trust the file.
func writeCheckpoint(path string, cp Checkpoint) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("dist: encoding checkpoint: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("dist: writing checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("dist: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("dist: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dist: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("dist: committing checkpoint: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a host
// crash. Filesystems that cannot sync directories are tolerated — the
// rename itself is still atomic there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// loadCheckpoint reads a checkpoint; a missing file surfaces as
// os.ErrNotExist for the caller to classify.
func loadCheckpoint(path string) (Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("dist: decoding checkpoint %s: %w", filepath.Base(path), err)
	}
	if cp.Front < 0 || cp.Shards <= 0 {
		return Checkpoint{}, fmt.Errorf("dist: checkpoint %s is malformed", filepath.Base(path))
	}
	return cp, nil
}

// matches rejects resuming one campaign's checkpoint into a different
// campaign — a different seed, target, plugin, or shard layout would
// splice two unrelated streams.
func (cp Checkpoint) matches(spec CampaignSpec, shards int) error {
	if cp.System != spec.System || cp.Plugin != spec.Plugin {
		return fmt.Errorf("dist: checkpoint is for campaign %s/%s, not %s/%s",
			cp.System, cp.Plugin, spec.System, spec.Plugin)
	}
	if cp.Seed != spec.Seed {
		return fmt.Errorf("dist: checkpoint seed %d does not match campaign seed %d", cp.Seed, spec.Seed)
	}
	if cp.Shards != shards {
		return fmt.Errorf("dist: checkpoint has %d shards, campaign has %d", cp.Shards, shards)
	}
	return nil
}

// reconcileOutput trims the output file to exactly front lines. A
// coordinator killed between flushing records and writing the next
// checkpoint leaves a few lines past the front; they are dropped and
// re-fetched deterministically. Fewer lines than the front claims means
// the file and checkpoint do not belong together.
func reconcileOutput(path string, front int) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) && front == 0 {
			return nil
		}
		return fmt.Errorf("dist: reconciling output: %w", err)
	}
	br := bufio.NewReader(f)
	var offset int64
	lines := 0
	for lines < front {
		chunk, err := br.ReadSlice('\n')
		offset += int64(len(chunk))
		if err == nil {
			lines++
			continue
		}
		if err == bufio.ErrBufferFull {
			// Long line: consume the rest of it.
			for err == bufio.ErrBufferFull {
				chunk, err = br.ReadSlice('\n')
				offset += int64(len(chunk))
			}
			if err == nil {
				lines++
				continue
			}
		}
		break
	}
	f.Close()
	if lines < front {
		return fmt.Errorf("dist: output %s has %d lines but checkpoint front is %d — wrong or corrupt output file",
			filepath.Base(path), lines, front)
	}
	if err := os.Truncate(path, offset); err != nil {
		return fmt.Errorf("dist: truncating output past the checkpoint front: %w", err)
	}
	return nil
}
