package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"conferr/internal/profile"
)

// ShardResult is what a ShardRunner reports when a shard completes.
type ShardResult struct {
	// Records is the shard's total scenario count, StartSeq-skipped
	// scenarios included — the number the coordinator sums to gap-check
	// the merged stream.
	Records int
	// Summary tallies the outcomes of the experiments this run executed.
	Summary profile.Summary
}

// ShardRunner executes one shard of a campaign described by a spec. The
// production implementation (wired in by cmd/sutd via the conferr
// facade's registry) builds the campaign and drives core.RunShard; tests
// substitute deterministic fakes. emit receives each record's global
// sequence number and its fully rendered JSONL line (no trailing
// newline); emit is never called for sequences below req.StartSeq.
type ShardRunner interface {
	RunShard(ctx context.Context, req ShardRequest, emit func(seq int, line []byte) error) (ShardResult, error)
}

// ShardRunnerFunc adapts a function to ShardRunner.
type ShardRunnerFunc func(ctx context.Context, req ShardRequest, emit func(seq int, line []byte) error) (ShardResult, error)

// RunShard implements ShardRunner.
func (f ShardRunnerFunc) RunShard(ctx context.Context, req ShardRequest, emit func(seq int, line []byte) error) (ShardResult, error) {
	return f(ctx, req, emit)
}

// Server is the campaign worker daemon: it accepts one shard request per
// TCP connection, executes it through the configured runner, and streams
// record frames (or a tally summary) back, with periodic progress
// heartbeats so the coordinator can tell a long experiment from a dead
// worker. Connections are independent — one daemon serves shards of
// several campaigns, or several shards of one, concurrently.
type Server struct {
	// Runner executes shards.
	Runner ShardRunner
	// Heartbeat is the progress-frame interval (0 selects 1s).
	Heartbeat time.Duration
	// WrapConn, when non-nil, wraps every accepted connection before the
	// protocol touches it — the chaos layer's injection point (see
	// internal/chaos), also usable for instrumentation.
	WrapConn func(net.Conn) net.Conn
	// DrainGrace bounds how long Drain lets a shard keep running before
	// its context is cancelled (0 selects 2s). Shards that emit a frame
	// during the grace period abort at that frame boundary instead.
	DrainGrace time.Duration
	// Logf, when non-nil, receives serve-loop diagnostics.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	cancels  map[net.Conn]context.CancelFunc
	closed   bool
	draining atomic.Bool
}

// errDraining aborts in-flight shards at their next frame boundary when
// the server is draining.
var errDraining = errors.New("dist: worker draining")

// Drain begins a graceful shutdown: the listener closes (new dials fail,
// so coordinators reassign work elsewhere), in-flight shards finish the
// frame they are on and then abort with an explicit error frame — the
// coordinator retries the shard from its resume front instead of
// diagnosing a severed connection — and shards that stay silent past
// DrainGrace (generation phase, a long experiment) have their contexts
// cancelled. Serve returns once every handler has said goodbye.
func (s *Server) Drain() error {
	if s.draining.Swap(true) {
		return nil
	}
	s.mu.Lock()
	ln := s.ln
	cancels := make([]context.CancelFunc, 0, len(s.cancels))
	for _, cancel := range s.cancels {
		cancels = append(cancels, cancel)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	if len(cancels) > 0 {
		grace := s.DrainGrace
		if grace <= 0 {
			grace = 2 * time.Second
		}
		time.AfterFunc(grace, func() {
			for _, cancel := range cancels {
				cancel()
			}
		})
	}
	return err
}

// Serve accepts connections on ln until the context is cancelled, the
// listener fails, or Close is called. It always returns a non-nil error;
// after a clean shutdown that error wraps net.ErrClosed.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { _ = s.Close() })
		defer stop()
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			return err
		}
		if s.WrapConn != nil {
			conn = s.WrapConn(conn)
		}
		if !s.track(conn) {
			_ = conn.Close()
			return net.ErrClosed
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.untrack(conn)
			s.handle(ctx, conn)
		}()
	}
}

// Close shuts the server down: the listener stops accepting and every
// active connection is severed — from a coordinator's point of view this
// is a worker dying mid-shard, which is exactly what the test suite uses
// it for.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return err
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	_ = conn.Close()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// handle serves one shard request on one connection.
func (s *Server) handle(ctx context.Context, conn net.Conn) {
	var req ShardRequest
	if err := newLineReader(conn).next(&req); err != nil {
		s.logf("dist: %s: reading request: %v", conn.RemoteAddr(), err)
		return
	}
	if err := req.Validate(); err != nil {
		_ = writeMsg(conn, Frame{Type: TypeError, Err: err.Error()})
		return
	}
	s.logf("dist: %s: shard %d/%d of %s/%s from seq %d",
		conn.RemoteAddr(), req.Shard, req.Shards, req.Campaign.System, req.Campaign.Plugin, req.StartSeq)

	// Writes to the connection interleave two producers — the runner's
	// record frames and the heartbeat ticker — so they serialize on wmu.
	var wmu sync.Mutex
	send := func(f Frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeMsg(conn, f)
	}

	// The shard aborts when the connection dies: emit's write error
	// propagates out of the runner, and cancelling runCtx here covers
	// tally mode, where nothing is written until the shard ends. Drain
	// cancels it too, after its grace period.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.mu.Lock()
	if s.cancels == nil {
		s.cancels = make(map[net.Conn]context.CancelFunc)
	}
	s.cancels[conn] = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.cancels, conn)
		s.mu.Unlock()
	}()

	var lastSeq, emitted int
	var progressMu sync.Mutex
	hb := s.Heartbeat
	if hb <= 0 {
		hb = time.Second
	}
	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-t.C:
				progressMu.Lock()
				seq, n := lastSeq, emitted
				progressMu.Unlock()
				if n == 0 {
					// Nothing completed yet (long generation phase, or all
					// sequences below StartSeq): heartbeat the start front so
					// the coordinator still sees liveness.
					seq = req.StartSeq
				}
				if err := send(Frame{Type: TypeProgress, Seq: seq}); err != nil {
					cancel()
					return
				}
			}
		}
	}()

	emit := func(seq int, line []byte) error {
		if s.draining.Load() {
			// Graceful drain: this frame is the shard's last. The runner
			// aborts, the handler sends an explicit error frame, and the
			// coordinator reschedules from its resume front.
			return errDraining
		}
		if err := runCtx.Err(); err != nil {
			return err
		}
		if !req.Campaign.TallyOnly {
			if err := send(Frame{Type: TypeRec, Seq: seq, Rec: line}); err != nil {
				cancel()
				return err
			}
		}
		progressMu.Lock()
		lastSeq, emitted = seq, emitted+1
		progressMu.Unlock()
		return nil
	}

	res, err := s.runShard(runCtx, req, emit)
	close(hbDone)
	hbWG.Wait()
	if err != nil {
		s.logf("dist: %s: shard %d/%d failed: %v", conn.RemoteAddr(), req.Shard, req.Shards, err)
		_ = send(Frame{Type: TypeError, Err: err.Error()})
		return
	}
	sum := res.Summary
	_ = send(Frame{Type: TypeDone, Records: res.Records, Summary: &sum})
}

// runShard invokes the runner behind a panic boundary: a panicking
// runner (a buggy plugin surviving the engine's own containment, a bug
// in the shard plumbing) becomes an error frame on this connection —
// the coordinator retries the shard — instead of killing the daemon and
// every other shard it is serving.
func (s *Server) runShard(ctx context.Context, req ShardRequest, emit func(int, []byte) error) (res ShardResult, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("dist: worker panic: %v\n%s", v, debug.Stack())
		}
	}()
	return s.Runner.RunShard(ctx, req, emit)
}

// ListenAndServe listens on addr and serves until ctx is cancelled.
// ready, when non-nil, receives the bound address once — callers that
// listen on ":0" learn the allocated port.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	if ready != nil {
		ready(ln.Addr())
	}
	err = s.Serve(ctx, ln)
	if errors.Is(err, net.ErrClosed) && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}
