package dist_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"conferr"
	"conferr/internal/chaos"
	"conferr/internal/dist"
	"conferr/internal/profile"
	"conferr/internal/profile/cprof"
)

// fastRetry keeps test retries well under a second.
var fastRetry = dist.RetryPolicy{MaxAttempts: 3, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond}

// startServer hosts a worker daemon on a loopback port.
func startServer(t *testing.T, runner dist.ShardRunner) (*dist.Server, string) {
	t.Helper()
	srv := &dist.Server{Runner: runner, Heartbeat: 20 * time.Millisecond}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(context.Background(), ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, ln.Addr().String()
}

func stubLine(seq int) []byte { return []byte(fmt.Sprintf(`{"seq":%d}`, seq)) }

// stubShard emits the shard's slice of a synthetic faultload whose size
// rides in Campaign.Limit, honoring the StartSeq skip contract.
func stubShard(req dist.ShardRequest, emit func(int, []byte) error) (dist.ShardResult, error) {
	total := req.Campaign.Limit
	owned, emitted := 0, 0
	for seq := req.Shard; seq < total; seq += req.Shards {
		owned++
		if seq < req.StartSeq {
			continue
		}
		if err := emit(seq, stubLine(seq)); err != nil {
			return dist.ShardResult{}, err
		}
		emitted++
	}
	return dist.ShardResult{Records: owned, Summary: profile.Summary{Injected: emitted}}, nil
}

func healthyRunner() dist.ShardRunner {
	return dist.ShardRunnerFunc(func(_ context.Context, req dist.ShardRequest, emit func(int, []byte) error) (dist.ShardResult, error) {
		return stubShard(req, emit)
	})
}

// wantStream renders the expected merged output for a stub faultload.
func wantStream(total int) []byte {
	var b bytes.Buffer
	for i := 0; i < total; i++ {
		b.Write(stubLine(i))
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// referenceStream runs the campaign single-process through the matrix
// path — the stream distributed runs must be byte-identical to.
func referenceStream(t *testing.T, seed int64, limit, port int) []byte {
	return referenceStreamRounds(t, seed, 1, limit, port)
}

func referenceStreamRounds(t *testing.T, seed int64, rounds, limit, port int) []byte {
	t.Helper()
	entries, skipped, err := conferr.MatrixEntries([]string{"nginx"}, []string{"typo"}, conferr.GeneratorOptions{Seed: seed})
	if err != nil || len(skipped) > 0 || len(entries) != 1 {
		t.Fatalf("matrix entries: %v (skipped %v)", err, skipped)
	}
	entries[0].Port = port
	var buf bytes.Buffer
	mo := conferr.MatrixOptions{
		Workers:  1,
		Rounds:   rounds,
		Limit:    limit,
		InMemory: true,
		SinkFor: func(e conferr.MatrixEntry) conferr.Sink {
			return conferr.StripDurations(conferr.NewJSONLSink(&buf, e.System, e.Plugin))
		},
	}
	if _, err := conferr.RunMatrix(context.Background(), entries, mo); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("reference run produced no records")
	}
	return buf.Bytes()
}

func realSpec(seed int64, limit, port int) dist.CampaignSpec {
	return dist.CampaignSpec{
		System: "nginx", Plugin: "typo", Seed: seed,
		Limit: limit, Port: port, Memnet: true, NoDuration: true,
	}
}

// TestDistByteIdentityRealCampaign: a real campaign distributed over two
// in-process workers merges byte-identical to the single-process matrix
// cell.
func TestDistByteIdentityRealCampaign(t *testing.T) {
	const (
		seed  = int64(7)
		limit = 30
		port  = 25900
	)
	ref := referenceStream(t, seed, limit, port)
	runner := conferr.NewDistRunner()
	_, a1 := startServer(t, runner)
	_, a2 := startServer(t, runner)

	var out bytes.Buffer
	coord := &dist.Coordinator{
		Workers:      []string{a1, a2},
		Shards:       3,
		Spec:         realSpec(seed, limit, port),
		Out:          &out,
		StallTimeout: 10 * time.Second,
		Retry:        fastRetry,
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != limit {
		t.Fatalf("records = %d, want %d", res.Records, limit)
	}
	if !bytes.Equal(out.Bytes(), ref) {
		t.Fatalf("distributed stream diverges from single-process reference:\n got %d bytes\nwant %d bytes", out.Len(), len(ref))
	}
}

// TestDistByteIdentityAfterWorkerKill: killing a worker mid-shard gets
// the shard reassigned and the merged profile stays byte-identical.
func TestDistByteIdentityAfterWorkerKill(t *testing.T) {
	const (
		seed  = int64(11)
		limit = 30
		port  = 25901
	)
	ref := referenceStream(t, seed, limit, port)
	real := conferr.NewDistRunner()

	// Server A dies after its sixth record; the atomic pointer (set once
	// the server exists) keeps the kill hook race-clean.
	var victim atomic.Pointer[dist.Server]
	var once sync.Once
	killer := dist.ShardRunnerFunc(func(ctx context.Context, req dist.ShardRequest, emit func(int, []byte) error) (dist.ShardResult, error) {
		n := 0
		return real.RunShard(ctx, req, func(seq int, line []byte) error {
			n++
			if n == 6 {
				once.Do(func() { _ = victim.Load().Close() })
			}
			return emit(seq, line)
		})
	})
	srvA, a1 := startServer(t, killer)
	victim.Store(srvA)
	_, a2 := startServer(t, real)

	var out bytes.Buffer
	coord := &dist.Coordinator{
		Workers:      []string{a1, a2},
		Shards:       3,
		Spec:         realSpec(seed, limit, port),
		Out:          &out,
		StallTimeout: 10 * time.Second,
		Retry:        fastRetry,
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != limit {
		t.Fatalf("records = %d, want %d", res.Records, limit)
	}
	if res.Retries == 0 {
		t.Fatal("worker death did not register as a shard retry")
	}
	if !bytes.Equal(out.Bytes(), ref) {
		t.Fatalf("post-kill stream diverges from single-process reference:\n got %d bytes\nwant %d bytes", out.Len(), len(ref))
	}
}

// TestDistDuplicateDeliveryDeduped: a shard that fails after delivering
// all its records gets retried, and the retry's re-delivered records are
// dropped by sequence without disturbing the stream or the summary.
func TestDistDuplicateDeliveryDeduped(t *testing.T) {
	const total = 20
	var failedOnce atomic.Bool
	runner := dist.ShardRunnerFunc(func(_ context.Context, req dist.ShardRequest, emit func(int, []byte) error) (dist.ShardResult, error) {
		res, err := stubShard(req, emit)
		if err != nil {
			return res, err
		}
		if req.Shard == 1 && failedOnce.CompareAndSwap(false, true) {
			return dist.ShardResult{}, errors.New("synthetic post-delivery failure")
		}
		return res, nil
	})
	_, addr := startServer(t, runner)

	var out bytes.Buffer
	coord := &dist.Coordinator{
		Workers:      []string{addr},
		Shards:       2,
		Spec:         dist.CampaignSpec{System: "stub", Plugin: "stub", Limit: total},
		Out:          &out,
		StallTimeout: 5 * time.Second,
		Retry:        fastRetry,
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), wantStream(total)) {
		t.Fatalf("merged stream diverges:\n%s", out.String())
	}
	if res.Retries != 1 {
		t.Fatalf("retries = %d, want 1", res.Retries)
	}
	if res.Duplicates != total/2 {
		t.Fatalf("duplicates = %d, want %d (shard 1 re-delivered whole)", res.Duplicates, total/2)
	}
	if res.Summary.Injected != total {
		t.Fatalf("summary injected = %d, want %d (failed attempt must not tally)", res.Summary.Injected, total)
	}
}

// TestDistWorkerDeathReassigned: a worker that dies mid-shard (stub
// flavor — the real-campaign flavor is TestDistByteIdentityAfterWorkerKill)
// is retired after dial failures and its shard completes elsewhere.
func TestDistWorkerDeathReassigned(t *testing.T) {
	const total = 40
	var victim atomic.Pointer[dist.Server]
	var once sync.Once
	dying := dist.ShardRunnerFunc(func(_ context.Context, req dist.ShardRequest, emit func(int, []byte) error) (dist.ShardResult, error) {
		total := req.Campaign.Limit
		owned, sent := 0, 0
		for seq := req.Shard; seq < total; seq += req.Shards {
			owned++
			if seq < req.StartSeq {
				continue
			}
			if sent == 3 {
				once.Do(func() { _ = victim.Load().Close() })
			}
			if err := emit(seq, stubLine(seq)); err != nil {
				return dist.ShardResult{}, err
			}
			sent++
		}
		return dist.ShardResult{Records: owned, Summary: profile.Summary{Injected: sent}}, nil
	})
	srvA, a1 := startServer(t, dying)
	victim.Store(srvA)
	_, a2 := startServer(t, healthyRunner())

	var out bytes.Buffer
	coord := &dist.Coordinator{
		Workers:      []string{a1, a2},
		Shards:       4,
		Spec:         dist.CampaignSpec{System: "stub", Plugin: "stub", Limit: total},
		Out:          &out,
		StallTimeout: 5 * time.Second,
		Retry:        fastRetry,
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), wantStream(total)) {
		t.Fatalf("merged stream diverges after worker death:\n%s", out.String())
	}
	if res.Records != total {
		t.Fatalf("records = %d, want %d", res.Records, total)
	}
	if res.Retries == 0 {
		t.Fatal("worker death did not register as a shard retry")
	}
}

// TestDistResumeFromCheckpoint: a failed run leaves a checkpoint; the
// resumed run re-requests every shard from the flush front, completes
// exactly the missing sequence range, and removes the checkpoint.
func TestDistResumeFromCheckpoint(t *testing.T) {
	const total = 20
	dir := t.TempDir()
	outPath := filepath.Join(dir, "merged.jsonl")
	cpPath := outPath + ".ckpt"
	spec := dist.CampaignSpec{System: "stub", Plugin: "stub", Seed: 3, Limit: total}

	// Run 1: shard 0 completes, shard 1 always fails — the run dies with
	// the flush front parked right behind shard 1's first sequence.
	broken := dist.ShardRunnerFunc(func(_ context.Context, req dist.ShardRequest, emit func(int, []byte) error) (dist.ShardResult, error) {
		if req.Shard == 1 {
			return dist.ShardResult{}, errors.New("shard 1 is cursed")
		}
		return stubShard(req, emit)
	})
	_, addr := startServer(t, broken)
	coord := &dist.Coordinator{
		Workers:         []string{addr},
		Shards:          2,
		Spec:            spec,
		OutPath:         outPath,
		CheckpointPath:  cpPath,
		StallTimeout:    5 * time.Second,
		Retry:           dist.RetryPolicy{MaxAttempts: 2, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		CheckpointEvery: 1,
	}
	if _, err := coord.Run(context.Background()); err == nil {
		t.Fatal("run with a cursed shard succeeded")
	}
	cpData, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatalf("failed run left no checkpoint: %v", err)
	}
	var cp struct {
		Front int `json:"front"`
	}
	if err := json.Unmarshal(cpData, &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Front != 1 {
		t.Fatalf("checkpoint front = %d, want 1 (only seq 0 was flushable)", cp.Front)
	}

	// Simulate records flushed past the checkpoint before the kill: the
	// resume must truncate them and re-fetch deterministically.
	f, err := os.OpenFile(outPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"stale":true}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Run 2: healthy workers, resumed. Every shard request must carry the
	// checkpointed front as its start sequence.
	var mu sync.Mutex
	var startSeqs []int
	observed := dist.ShardRunnerFunc(func(_ context.Context, req dist.ShardRequest, emit func(int, []byte) error) (dist.ShardResult, error) {
		mu.Lock()
		startSeqs = append(startSeqs, req.StartSeq)
		mu.Unlock()
		return stubShard(req, emit)
	})
	_, addr2 := startServer(t, observed)
	coord2 := &dist.Coordinator{
		Workers:        []string{addr2},
		Shards:         2,
		Spec:           spec,
		OutPath:        outPath,
		CheckpointPath: cpPath,
		Resume:         true,
		StallTimeout:   5 * time.Second,
		Retry:          fastRetry,
	}
	res, err := coord2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.StartSeq != 1 {
		t.Fatalf("resume started from %d, want 1", res.StartSeq)
	}
	mu.Lock()
	if len(startSeqs) != 2 {
		t.Fatalf("resume issued %d shard requests, want 2", len(startSeqs))
	}
	for _, s := range startSeqs {
		if s != 1 {
			t.Fatalf("resumed shard requested from sequence %d, want 1", s)
		}
	}
	mu.Unlock()
	if res.Summary.Injected != total-1 {
		t.Fatalf("resumed run injected %d, want %d (only the missing range)", res.Summary.Injected, total-1)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantStream(total)) {
		t.Fatalf("resumed output diverges:\n%s", got)
	}
	if _, err := os.Stat(cpPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint not removed after success: %v", err)
	}
}

// TestDistTallyMode: tally-only campaigns move no record frames, only
// per-shard summaries.
func TestDistTallyMode(t *testing.T) {
	const total = 16
	_, addr := startServer(t, healthyRunner())
	var out bytes.Buffer
	coord := &dist.Coordinator{
		Workers:      []string{addr},
		Shards:       2,
		Spec:         dist.CampaignSpec{System: "stub", Plugin: "stub", Limit: total, TallyOnly: true},
		Out:          &out,
		StallTimeout: 5 * time.Second,
		Retry:        fastRetry,
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("tally mode wrote %d bytes of records", out.Len())
	}
	if res.Records != total || res.Summary.Injected != total {
		t.Fatalf("tally result: records=%d injected=%d, want %d/%d", res.Records, res.Summary.Injected, total, total)
	}
}

// cprofOutFactory wires a coordinator's merged stream into a cprof
// file, the way cmd/conferr does for `dist -out foo.cprof`.
func cprofOutFactory(path string) func(int) (io.Writer, func() error, func(bool) error, error) {
	return func(startSeq int) (io.Writer, func() error, func(bool) error, error) {
		cf, err := cprof.OpenFileAt(path, startSeq)
		if err != nil {
			return nil, nil, nil, err
		}
		return cf.W.LineWriter(), cf.Flush, cf.Close, nil
	}
}

// TestDistCprofOutByteIdentity: a distributed campaign merged straight
// into a cprof file converts back to JSONL byte-identical to the
// single-process reference stream.
func TestDistCprofOutByteIdentity(t *testing.T) {
	const (
		seed  = int64(13)
		limit = 30
		port  = 25903
	)
	ref := referenceStream(t, seed, limit, port)
	runner := conferr.NewDistRunner()
	_, a1 := startServer(t, runner)
	_, a2 := startServer(t, runner)

	outPath := filepath.Join(t.TempDir(), "merged.cprof")
	coord := &dist.Coordinator{
		Workers:      []string{a1, a2},
		Shards:       3,
		Spec:         realSpec(seed, limit, port),
		OutFactory:   cprofOutFactory(outPath),
		StallTimeout: 10 * time.Second,
		Retry:        fastRetry,
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != limit {
		t.Fatalf("records = %d, want %d", res.Records, limit)
	}
	var got bytes.Buffer
	if err := cprof.ToJSONL(outPath, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), ref) {
		t.Fatalf("cprof merge diverges from single-process reference:\n got %d bytes\nwant %d bytes", got.Len(), len(ref))
	}
	// The finished file must carry its trailer index.
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, _ := f.Stat()
	if _, fromIndex, err := cprof.ReadIndex(f, st.Size()); err != nil || !fromIndex {
		t.Fatalf("finished cprof file lacks a trailer index (fromIndex=%v err=%v)", fromIndex, err)
	}
}

// TestDistCprofResume: a run that dies mid-campaign leaves a trailerless
// cprof prefix and a checkpoint; the resumed run reconciles the file by
// walking frames, truncates past the front, completes the missing range,
// and the final file still converts byte-identical to the reference.
func TestDistCprofResume(t *testing.T) {
	const (
		seed  = int64(17)
		limit = 30
		port  = 25904
	)
	ref := referenceStream(t, seed, limit, port)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "resume.cprof")
	cpPath := outPath + ".ckpt"
	real := conferr.NewDistRunner()

	// Run 1: shard 1 always fails, so the flush front parks behind its
	// first sequence while other shards' records keep checkpointing.
	broken := dist.ShardRunnerFunc(func(ctx context.Context, req dist.ShardRequest, emit func(int, []byte) error) (dist.ShardResult, error) {
		if req.Shard == 1 {
			return dist.ShardResult{}, errors.New("shard 1 is cursed")
		}
		return real.RunShard(ctx, req, emit)
	})
	_, addr := startServer(t, broken)
	coord := &dist.Coordinator{
		Workers:         []string{addr},
		Shards:          3,
		Spec:            realSpec(seed, limit, port),
		OutFactory:      cprofOutFactory(outPath),
		CheckpointPath:  cpPath,
		CheckpointEvery: 1,
		StallTimeout:    5 * time.Second,
		Retry:           dist.RetryPolicy{MaxAttempts: 2, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	}
	if _, err := coord.Run(context.Background()); err == nil {
		t.Fatal("run with a cursed shard succeeded")
	}
	if _, err := os.Stat(cpPath); err != nil {
		t.Fatalf("failed run left no checkpoint: %v", err)
	}

	// Run 2: healthy worker, resumed from the checkpoint.
	_, addr2 := startServer(t, real)
	coord2 := &dist.Coordinator{
		Workers:        []string{addr2},
		Shards:         3,
		Spec:           realSpec(seed, limit, port),
		OutFactory:     cprofOutFactory(outPath),
		CheckpointPath: cpPath,
		Resume:         true,
		StallTimeout:   5 * time.Second,
		Retry:          fastRetry,
	}
	res, err := coord2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.StartSeq == 0 {
		t.Fatal("resume did not start from the checkpoint front")
	}
	if res.Records != limit {
		t.Fatalf("records = %d, want %d", res.Records, limit)
	}
	var got bytes.Buffer
	if err := cprof.ToJSONL(outPath, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), ref) {
		t.Fatalf("resumed cprof merge diverges from reference:\n got %d bytes\nwant %d bytes", got.Len(), len(ref))
	}
	if _, err := os.Stat(cpPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint not removed after success: %v", err)
	}
}

// frameConn speaks the wire protocol by hand for protocol-level tests.
type frameConn struct {
	conn net.Conn
	sc   *bufio.Scanner
}

func dialFrames(t *testing.T, addr string) *frameConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &frameConn{conn: conn, sc: sc}
}

func (fc *frameConn) send(t *testing.T, line string) {
	t.Helper()
	if _, err := fmt.Fprintln(fc.conn, line); err != nil {
		t.Fatal(err)
	}
}

func (fc *frameConn) next(t *testing.T) (dist.Frame, error) {
	t.Helper()
	if !fc.sc.Scan() {
		if err := fc.sc.Err(); err != nil {
			return dist.Frame{}, err
		}
		return dist.Frame{}, io.EOF
	}
	var f dist.Frame
	if err := json.Unmarshal(fc.sc.Bytes(), &f); err != nil {
		t.Fatalf("undecodable frame %q: %v", fc.sc.Text(), err)
	}
	return f, nil
}

// TestDistProtocolVersionMismatchOverWire: a coordinator speaking the
// wrong (or no) protocol version gets a clear error frame naming both
// versions, before any campaign state is built.
func TestDistProtocolVersionMismatchOverWire(t *testing.T) {
	_, addr := startServer(t, healthyRunner())
	cases := []struct{ line, want string }{
		{fmt.Sprintf(`{"type":"run","proto":%d,"campaign":{"system":"s","plugin":"p"},"shard":0,"shards":1}`,
			dist.ProtocolVersion+7), "protocol version mismatch"},
		{`{"type":"run","campaign":{"system":"s","plugin":"p"},"shard":0,"shards":1}`,
			"no protocol version"},
	}
	for _, tc := range cases {
		fc := dialFrames(t, addr)
		fc.send(t, tc.line)
		f, err := fc.next(t)
		if err != nil {
			t.Fatalf("no error frame for %q: %v", tc.line, err)
		}
		if f.Type != dist.TypeError || !strings.Contains(f.Err, tc.want) {
			t.Fatalf("frame for %q = %+v, want error mentioning %q", tc.line, f, tc.want)
		}
	}
}

// validStubRequest renders a current-protocol request for the stub runner.
func validStubRequest(limit int) string {
	return fmt.Sprintf(`{"type":"run","proto":%d,"campaign":{"system":"stub","plugin":"stub","limit":%d},"shard":0,"shards":1}`,
		dist.ProtocolVersion, limit)
}

// TestDistDrainSendsExplicitErrorFrame: Drain lets an in-flight shard
// finish its current frame, then aborts it with an explicit error frame
// — a goodbye, not a severed connection.
func TestDistDrainSendsExplicitErrorFrame(t *testing.T) {
	slow := dist.ShardRunnerFunc(func(_ context.Context, req dist.ShardRequest, emit func(int, []byte) error) (dist.ShardResult, error) {
		for seq := req.Shard; seq < req.Campaign.Limit; seq += req.Shards {
			time.Sleep(2 * time.Millisecond)
			if err := emit(seq, stubLine(seq)); err != nil {
				return dist.ShardResult{}, err
			}
		}
		return dist.ShardResult{Records: req.Campaign.Limit}, nil
	})
	srv, addr := startServer(t, slow)
	fc := dialFrames(t, addr)
	fc.send(t, validStubRequest(5000))

	recs := 0
	drained := false
	for {
		f, err := fc.next(t)
		if err != nil {
			t.Fatalf("connection severed without a goodbye frame (after %d records): %v", recs, err)
		}
		switch f.Type {
		case dist.TypeRec:
			recs++
			if recs == 3 && !drained {
				drained = true
				if err := srv.Drain(); err != nil {
					t.Fatal(err)
				}
			}
		case dist.TypeProgress:
		case dist.TypeError:
			if !drained {
				t.Fatalf("premature error frame: %q", f.Err)
			}
			if !strings.Contains(f.Err, "draining") {
				t.Fatalf("drain goodbye = %q, want a draining complaint", f.Err)
			}
			if recs < 3 {
				t.Fatalf("drain cut the stream at %d records, before the in-flight frames", recs)
			}
			return
		default:
			t.Fatalf("unexpected frame %+v", f)
		}
	}
}

// TestDistDrainCancelsSilentShard: a shard that emits nothing (stuck in
// generation, a long experiment) is cancelled after DrainGrace and still
// says goodbye with an error frame.
func TestDistDrainCancelsSilentShard(t *testing.T) {
	blocked := dist.ShardRunnerFunc(func(ctx context.Context, _ dist.ShardRequest, _ func(int, []byte) error) (dist.ShardResult, error) {
		<-ctx.Done()
		return dist.ShardResult{}, ctx.Err()
	})
	srv := &dist.Server{Runner: blocked, Heartbeat: 10 * time.Millisecond, DrainGrace: 30 * time.Millisecond}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(context.Background(), ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	fc := dialFrames(t, ln.Addr().String())
	fc.send(t, validStubRequest(10))
	// Wait for a heartbeat so the shard is known to be in flight.
	if f, err := fc.next(t); err != nil || f.Type != dist.TypeProgress {
		t.Fatalf("first frame = %+v (%v), want progress", f, err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no goodbye frame after drain grace")
		}
		f, err := fc.next(t)
		if err != nil {
			t.Fatalf("connection severed without a goodbye frame: %v", err)
		}
		if f.Type == dist.TypeError {
			return
		}
	}
}

// TestDistChaosSoakByteIdentity is the chaos soak: a 20k-scenario real
// campaign distributed over workers whose protocol connections suffer
// injected latency spikes, split writes and mid-frame resets still
// merges byte-identical to the fault-free single-process reference.
func TestDistChaosSoakByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-scenario chaos soak")
	}
	const (
		seed = int64(23)
		port = 25905
		want = 20000
	)
	ref := referenceStream(t, seed, want, port)
	base := bytes.Count(ref, []byte("\n"))
	rounds := 1
	if base < want {
		rounds = (want + base - 1) / base
		ref = referenceStreamRounds(t, seed, rounds, want, port)
	}
	total := bytes.Count(ref, []byte("\n"))
	t.Logf("chaos soak faultload: %d records (%d base x %d rounds, capped %d)", total, base, rounds, want)

	runner := conferr.NewDistRunner()
	inj := chaos.NewInjector(chaos.Config{
		Seed:        99,
		LatencyProb: 0.0005, LatencyMax: time.Millisecond,
		SplitProb: 0.01,
		ResetProb: 0.0002,
	})
	mkServer := func() string {
		srv := &dist.Server{Runner: runner, Heartbeat: 50 * time.Millisecond, WrapConn: inj.Wrap}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(context.Background(), ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		return ln.Addr().String()
	}
	spec := realSpec(seed, want, port)
	spec.Rounds = rounds

	var out bytes.Buffer
	coord := &dist.Coordinator{
		Workers:      []string{mkServer(), mkServer()},
		Shards:       4,
		Spec:         spec,
		Out:          &out,
		StallTimeout: 30 * time.Second,
		Retry:        dist.RetryPolicy{MaxAttempts: 100, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond},
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != total {
		t.Fatalf("records = %d, want %d", res.Records, total)
	}
	if !bytes.Equal(out.Bytes(), ref) {
		t.Fatalf("chaos-exposed stream diverges from fault-free reference:\n got %d bytes\nwant %d bytes", out.Len(), len(ref))
	}
	t.Logf("chaos soak: %d records merged, %d retries, %d duplicates dropped", res.Records, res.Retries, res.Duplicates)
}
