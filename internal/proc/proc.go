// Package proc controls systems under test that run as external
// processes — the paper's deployment model, where ConfErr drives real
// server binaries through start/stop scripts (§5.1). It provides a
// Controller that writes configuration files to a work directory, starts
// the process, probes for readiness, captures output, and stops the
// process gracefully (SIGTERM, then SIGKILL after a grace period).
package proc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"conferr/internal/suts"
)

// Options configures a Controller.
type Options struct {
	// Name identifies the SUT in profiles.
	Name string
	// Command is the executable to run.
	Command string
	// Args are the command's arguments. The placeholder {dir} is replaced
	// with the work directory holding the configuration files.
	Args []string
	// WorkDir is the directory configuration files are written to; empty
	// means a fresh temporary directory per Start.
	WorkDir string
	// DefaultFiles is the initial configuration (suts.System contract).
	DefaultFiles suts.Files
	// ReadyProbe, when non-nil, is polled after the process starts; Start
	// returns once it succeeds. If the process exits first, its output is
	// reported as a startup error.
	ReadyProbe func() error
	// ReadyTimeout bounds the readiness wait (default 5s). A process that
	// is still running but never becomes ready is killed and reported as
	// a startup failure — a plausible effect of a configuration error.
	ReadyTimeout time.Duration
	// StopSignal is sent to stop the process (default SIGTERM).
	StopSignal os.Signal
	// StopGrace is how long to wait after StopSignal before SIGKILL
	// (default 3s).
	StopGrace time.Duration
	// Env is appended to the child's environment.
	Env []string
}

// lockedBuffer is a bytes.Buffer safe for the concurrent writes of the
// exec pipe copier and the reads of Output / the readiness loop.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

// Write implements io.Writer.
func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// String returns the accumulated output.
func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Controller runs an external process as a suts.System.
type Controller struct {
	opts Options

	mu     sync.Mutex
	cmd    *exec.Cmd
	output *lockedBuffer
	dir    string
	exited chan error
}

var _ suts.System = (*Controller)(nil)

// New returns a controller for the given options.
func New(opts Options) (*Controller, error) {
	if opts.Command == "" {
		return nil, errors.New("proc: Command is required")
	}
	if opts.Name == "" {
		opts.Name = filepath.Base(opts.Command)
	}
	if opts.ReadyTimeout == 0 {
		opts.ReadyTimeout = 5 * time.Second
	}
	if opts.StopGrace == 0 {
		opts.StopGrace = 3 * time.Second
	}
	if opts.StopSignal == nil {
		opts.StopSignal = syscall.SIGTERM
	}
	return &Controller{opts: opts}, nil
}

// Name implements suts.System.
func (c *Controller) Name() string { return c.opts.Name }

// DefaultConfig implements suts.System.
func (c *Controller) DefaultConfig() suts.Files {
	out := make(suts.Files, len(c.opts.DefaultFiles))
	for k, v := range c.opts.DefaultFiles {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// Start implements suts.System: write the files, spawn the process, wait
// for readiness.
func (c *Controller) Start(files suts.Files) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cmd != nil {
		return errors.New("proc: already started")
	}

	dir := c.opts.WorkDir
	if dir == "" {
		d, err := os.MkdirTemp("", "conferr-sut-*")
		if err != nil {
			return fmt.Errorf("proc: temp dir: %w", err)
		}
		dir = d
	}
	c.dir = dir
	for name, data := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("proc: mkdir for %s: %w", name, err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return fmt.Errorf("proc: writing %s: %w", name, err)
		}
	}

	args := make([]string, len(c.opts.Args))
	for i, a := range c.opts.Args {
		args[i] = strings.ReplaceAll(a, "{dir}", dir)
	}
	cmd := exec.Command(c.opts.Command, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), c.opts.Env...)
	// Run the SUT in its own process group so stop signals reach any
	// children it spawned, and cap how long Wait lingers on inherited
	// output pipes after the main process exits.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	cmd.WaitDelay = time.Second
	out := &lockedBuffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		return &suts.StartupError{System: c.opts.Name, Msg: fmt.Sprintf("spawn: %v", err)}
	}
	c.cmd = cmd
	c.output = out
	c.exited = make(chan error, 1)
	go func(ch chan error) { ch <- cmd.Wait() }(c.exited)

	// Readiness: either the probe succeeds, or the process exits (its
	// output is the SUT's complaint), or we time out.
	deadline := time.Now().Add(c.opts.ReadyTimeout)
	for {
		select {
		case err := <-c.exited:
			msg := strings.TrimSpace(out.String())
			if msg == "" && err != nil {
				msg = err.Error()
			}
			c.cmd = nil
			return &suts.StartupError{System: c.opts.Name, Msg: msg}
		default:
		}
		if c.opts.ReadyProbe == nil {
			// No probe: a brief settle period, then consider it up if it
			// has not exited.
			select {
			case err := <-c.exited:
				msg := strings.TrimSpace(out.String())
				if msg == "" && err != nil {
					msg = err.Error()
				}
				c.cmd = nil
				return &suts.StartupError{System: c.opts.Name, Msg: msg}
			case <-time.After(50 * time.Millisecond):
				return nil
			}
		}
		if err := c.opts.ReadyProbe(); err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			c.killLocked()
			return &suts.StartupError{System: c.opts.Name,
				Msg: fmt.Sprintf("not ready after %v: %s", c.opts.ReadyTimeout,
					strings.TrimSpace(out.String()))}
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Stop implements suts.System: signal, wait for the grace period, then
// kill.
func (c *Controller) Stop() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.cleanupLocked()
	if c.cmd == nil || c.cmd.Process == nil {
		return nil
	}
	c.signalGroup(c.opts.StopSignal)
	select {
	case <-c.exited:
		c.cmd = nil
		return nil
	case <-time.After(c.opts.StopGrace):
		c.killLocked()
		return nil
	}
}

// killLocked force-kills the child's process group and reaps it. Caller
// holds mu.
func (c *Controller) killLocked() {
	if c.cmd == nil || c.cmd.Process == nil {
		return
	}
	c.signalGroup(syscall.SIGKILL)
	select {
	case <-c.exited:
	case <-time.After(2 * time.Second):
	}
	c.cmd = nil
}

// signalGroup delivers sig to the child's process group (falling back to
// the child itself). Caller holds mu.
func (c *Controller) signalGroup(sig os.Signal) {
	s, ok := sig.(syscall.Signal)
	if !ok {
		_ = c.cmd.Process.Signal(sig)
		return
	}
	if err := syscall.Kill(-c.cmd.Process.Pid, s); err != nil {
		_ = c.cmd.Process.Signal(sig)
	}
}

// cleanupLocked removes a temporary work directory. Caller holds mu.
func (c *Controller) cleanupLocked() {
	if c.opts.WorkDir == "" && c.dir != "" {
		_ = os.RemoveAll(c.dir)
		c.dir = ""
	}
}

// Output returns the child's combined stdout/stderr captured so far.
func (c *Controller) Output() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.output == nil {
		return ""
	}
	return c.output.String()
}

// WorkDir returns the directory the current configuration was written to.
func (c *Controller) WorkDir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// WaitExit blocks until the child exits or ctx is done; for tests and
// crash-observation campaigns.
func (c *Controller) WaitExit(ctx context.Context) error {
	c.mu.Lock()
	ch := c.exited
	c.mu.Unlock()
	if ch == nil {
		return nil
	}
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}
