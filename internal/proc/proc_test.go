package proc

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"conferr/internal/suts"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("missing Command accepted")
	}
	c, err := New(Options{Command: "/bin/sh"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "sh" {
		t.Errorf("default Name = %q", c.Name())
	}
}

func TestStartWritesFilesAndRuns(t *testing.T) {
	// The "server": a shell loop that exits 0 only if its config says ok.
	c, err := New(Options{
		Name:    "looper",
		Command: "/bin/sh",
		Args:    []string{"-c", "grep -q ok {dir}/app.conf && sleep 60"},
		DefaultFiles: suts.Files{
			"app.conf": []byte("status = ok\n"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(c.DefaultConfig()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	dir := c.WorkDir()
	if data, err := os.ReadFile(filepath.Join(dir, "app.conf")); err != nil || !strings.Contains(string(data), "ok") {
		t.Errorf("config not written: %v %q", err, data)
	}
	if err := c.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Error("temp work dir not cleaned up")
	}
}

func TestStartupFailureReported(t *testing.T) {
	c, err := New(Options{
		Name:         "failer",
		Command:      "/bin/sh",
		Args:         []string{"-c", "echo 'unknown directive frobnicate' >&2; exit 3"},
		DefaultFiles: suts.Files{"x.conf": []byte("frobnicate\n")},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Start(c.DefaultConfig())
	if err == nil {
		c.Stop()
		t.Fatal("crashing process reported as started")
	}
	if !suts.IsStartupError(err) {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(err.Error(), "unknown directive frobnicate") {
		t.Errorf("child output not captured: %v", err)
	}
	if err := c.Stop(); err != nil {
		t.Errorf("Stop after failed start: %v", err)
	}
}

func TestReadyProbe(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "ready")
	c, err := New(Options{
		Name:    "prober",
		Command: "/bin/sh",
		Args:    []string{"-c", fmt.Sprintf("sleep 0.1; touch %s; sleep 60", marker)},
		ReadyProbe: func() error {
			if _, err := os.Stat(marker); err != nil {
				return err
			}
			return nil
		},
		ReadyTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Start(suts.Files{}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if time.Since(start) < 90*time.Millisecond {
		t.Error("Start returned before the probe could succeed")
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestReadyTimeoutKillsChild(t *testing.T) {
	c, err := New(Options{
		Name:         "never-ready",
		Command:      "/bin/sh",
		Args:         []string{"-c", "sleep 60"},
		ReadyProbe:   func() error { return errors.New("not yet") },
		ReadyTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Start(suts.Files{})
	if err == nil {
		c.Stop()
		t.Fatal("never-ready process reported started")
	}
	if !suts.IsStartupError(err) || !strings.Contains(err.Error(), "not ready") {
		t.Errorf("err = %v", err)
	}
	_ = c.Stop()
}

func TestStopEscalatesToKill(t *testing.T) {
	// A child that ignores SIGTERM must be SIGKILLed after the grace
	// period.
	c, err := New(Options{
		Name:      "stubborn",
		Command:   "/bin/sh",
		Args:      []string{"-c", "trap '' TERM; sleep 60"},
		StopGrace: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(suts.Files{}); err != nil {
		t.Fatal(err)
	}
	// Give the shell a moment to install the trap.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Errorf("Stop returned too fast (%v); trap not exercised?", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("Stop took %v; kill escalation failed", elapsed)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	c, err := New(Options{
		Command: "/bin/sh",
		Args:    []string{"-c", "sleep 60"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(suts.Files{}); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Start(suts.Files{}); err == nil {
		t.Error("second Start accepted")
	}
}

func TestStopWithoutStart(t *testing.T) {
	c, _ := New(Options{Command: "/bin/true"})
	if err := c.Stop(); err != nil {
		t.Errorf("Stop without Start: %v", err)
	}
}

func TestSpawnErrorIsStartupError(t *testing.T) {
	c, _ := New(Options{Command: "/no/such/binary"})
	err := c.Start(suts.Files{})
	if err == nil || !suts.IsStartupError(err) {
		t.Errorf("err = %v", err)
	}
}

func TestOutputCapture(t *testing.T) {
	c, _ := New(Options{
		Command: "/bin/sh",
		Args:    []string{"-c", "echo hello-from-child; sleep 60"},
	})
	if err := c.Start(suts.Files{}); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(c.Output(), "hello-from-child") {
		if time.Now().After(deadline) {
			t.Fatalf("output not captured: %q", c.Output())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWaitExit(t *testing.T) {
	c, _ := New(Options{
		Command: "/bin/sh",
		Args:    []string{"-c", "sleep 0.2"},
	})
	if err := c.Start(suts.Files{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c.WaitExit(ctx); err != nil {
		t.Errorf("WaitExit: %v", err)
	}
	_ = c.Stop()
	// WaitExit with no child is a no-op.
	c2, _ := New(Options{Command: "/bin/true"})
	if err := c2.WaitExit(context.Background()); err != nil {
		t.Errorf("idle WaitExit: %v", err)
	}
}

func TestFixedWorkDirPreserved(t *testing.T) {
	dir := t.TempDir()
	c, _ := New(Options{
		Command:      "/bin/sh",
		Args:         []string{"-c", "sleep 60"},
		WorkDir:      dir,
		DefaultFiles: suts.Files{"nested/app.conf": []byte("x\n")},
	})
	if err := c.Start(c.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	// A caller-provided work dir must survive Stop.
	if _, err := os.Stat(filepath.Join(dir, "nested", "app.conf")); err != nil {
		t.Errorf("fixed work dir cleaned up: %v", err)
	}
}
