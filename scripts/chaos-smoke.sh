#!/usr/bin/env bash
# Chaos smoke test: distributed campaign over a deliberately faulty
# network.
#
# Starts two sutd worker daemons with -chaos-seed, so every protocol
# connection suffers deterministic injected faults — latency spikes,
# split writes, and rare mid-frame connection resets. The coordinator
# must absorb torn frames and severed connections through its retry and
# sequence-dedup machinery, and the merged -no-duration profile must
# still come out byte-identical to a fault-free single-process
# `conferr matrix -stream-out` reference. Also drains a worker with
# SIGTERM mid-run to prove the graceful-drain path reassigns work
# without corrupting the stream.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
  kill "$(jobs -p)" >/dev/null 2>&1 || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/conferr" ./cmd/conferr
go build -o "$tmp/sutd" ./cmd/sutd

SEED=42 ROUNDS=20 LIMIT=20000 PORT=24100
W1=29441 W2=29442

echo "== single-process fault-free reference"
"$tmp/conferr" matrix -systems nginx -plugins typo -seed $SEED \
  -rounds $ROUNDS -limit $LIMIT -base-port $PORT -memnet \
  -no-duration -stream-out "$tmp/ref.jsonl" >/dev/null

echo "== starting two chaos workers"
"$tmp/sutd" -serve 127.0.0.1:$W1 -chaos-seed 7 -quiet >"$tmp/w1.log" 2>&1 &
W1PID=$!
"$tmp/sutd" -serve 127.0.0.1:$W2 -chaos-seed 11 -quiet >"$tmp/w2.log" 2>&1 &
for log in w1 w2; do
  ok=""
  for _ in $(seq 50); do
    if grep -q "worker listening" "$tmp/$log.log"; then ok=1; break; fi
    sleep 0.1
  done
  [ -n "$ok" ] || { echo "worker $log did not start"; cat "$tmp/$log.log"; exit 1; }
done

echo "== distributed run under injected faults (worker 1 drains mid-run)"
"$tmp/conferr" dist -workers 127.0.0.1:$W1,127.0.0.1:$W2 -shards 4 \
  -system nginx -plugin typo -seed $SEED -rounds $ROUNDS -limit $LIMIT \
  -port $PORT -memnet -no-duration -retries 50 -fsync \
  -out "$tmp/dist.jsonl" &
DIST=$!

sleep 0.3
kill -TERM "$W1PID" 2>/dev/null && echo "draining worker 1 (pid $W1PID)" || true

wait "$DIST"

cmp "$tmp/ref.jsonl" "$tmp/dist.jsonl"
echo "chaos-smoke OK: faulty-network merge byte-identical to the fault-free reference ($(wc -l <"$tmp/dist.jsonl") records)"
