#!/usr/bin/env bash
# Two-process distributed-campaign smoke test.
#
# Starts two sutd worker daemons on localhost, runs a bounded nginx/typo
# campaign through `conferr dist`, kills one worker mid-run (SIGKILL, no
# goodbye), and byte-compares the merged -no-duration profile against a
# single-process `conferr matrix -stream-out` reference of the same
# cell. This is the end-to-end check behind the determinism guarantee:
# scheduling, worker death, shard retry and the sequence merge must all
# be invisible in the output.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
  kill "$(jobs -p)" >/dev/null 2>&1 || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/conferr" ./cmd/conferr
go build -o "$tmp/sutd" ./cmd/sutd

SEED=42 ROUNDS=20 LIMIT=20000 PORT=24100
W1=29431 W2=29432

echo "== single-process reference"
"$tmp/conferr" matrix -systems nginx -plugins typo -seed $SEED \
  -rounds $ROUNDS -limit $LIMIT -base-port $PORT -memnet \
  -no-duration -stream-out "$tmp/ref.jsonl" >/dev/null

echo "== starting two workers"
"$tmp/sutd" -serve 127.0.0.1:$W1 -quiet >"$tmp/w1.log" 2>&1 &
W1PID=$!
"$tmp/sutd" -serve 127.0.0.1:$W2 -quiet >"$tmp/w2.log" 2>&1 &
W2PID=$!
for log in w1 w2; do
  ok=""
  for _ in $(seq 50); do
    if grep -q "worker listening" "$tmp/$log.log"; then ok=1; break; fi
    sleep 0.1
  done
  [ -n "$ok" ] || { echo "worker $log did not start"; cat "$tmp/$log.log"; exit 1; }
done

echo "== distributed run (worker 1 dies mid-run)"
"$tmp/conferr" dist -workers 127.0.0.1:$W1,127.0.0.1:$W2 -shards 4 \
  -system nginx -plugin typo -seed $SEED -rounds $ROUNDS -limit $LIMIT \
  -port $PORT -memnet -no-duration -out "$tmp/dist.jsonl" &
DIST=$!

sleep 0.3
kill -9 "$W1PID" 2>/dev/null && echo "killed worker 1 (pid $W1PID)" || true

wait "$DIST"

cmp "$tmp/ref.jsonl" "$tmp/dist.jsonl"
echo "dist-smoke OK: merged profile byte-identical to the single-process reference ($(wc -l <"$tmp/dist.jsonl") records)"

echo "== distributed run merged to .cprof (surviving worker only)"
"$tmp/conferr" dist -workers 127.0.0.1:$W2 -shards 4 \
  -system nginx -plugin typo -seed $SEED -rounds $ROUNDS -limit $LIMIT \
  -port $PORT -memnet -no-duration -out "$tmp/dist.cprof"

"$tmp/conferr" convert "$tmp/dist.cprof" "$tmp/dist-converted.jsonl" >/dev/null
cmp "$tmp/ref.jsonl" "$tmp/dist-converted.jsonl"

jsonl_bytes=$(wc -c <"$tmp/ref.jsonl")
cprof_bytes=$(wc -c <"$tmp/dist.cprof")
echo "dist-smoke OK: .cprof merge converts byte-identical to the JSONL reference ($cprof_bytes vs $jsonl_bytes bytes)"
