package conferr

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/core"
	"conferr/internal/cpath"
	"conferr/internal/plugins/semantic"
	"conferr/internal/plugins/structural"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/template"
	"conferr/internal/view"
)

// This file implements the paper's evaluation experiments (§5): one entry
// point per table and figure, shared by the CLI, the examples and the
// benchmark harness. Every experiment has a context-aware form taking a
// worker count (RunTable1Ctx, ...); the plain forms are sequential
// shorthands. Whatever the worker count, each experiment injects the
// identical faultload and produces the identical profile — parallelism
// only changes wall-clock time.

// DefaultSeed is the canonical faultload seed used by the CLI, the
// examples and the benchmark harness. The qualitative Table 1 shape
// (MySQL ≥ Postgres ≫ Apache on startup detection; Apache alone with
// functional-test detections) holds for most seeds; this one also
// reproduces the paper's percentages closely. Seed sensitivity is
// discussed in EXPERIMENTS.md. The value was re-picked when RandomSubset
// switched to an O(n) partial Fisher–Yates draw, which changed the
// sample each seed selects.
const DefaultSeed = 12

// Fixed ports used by the experiment harness. Faultloads include typos in
// the port digits, so reproducible experiments need stable ports; these
// sit below the kernel's ephemeral range to avoid collisions with the
// dynamically allocated ports other tests use.
const (
	table1MySQLPort     = 23306
	table1PostgresPort  = 25432
	table1ApachePort    = 28080
	figure3MySQLPort    = 23307
	figure3PostgresPort = 25433
)

// deleteGen generates one deletion scenario per directive — the "deletion
// of entire directives" component of the §5.2 faultload.
type deleteGen struct{}

var _ core.Generator = deleteGen{}

// Name implements core.Generator.
func (deleteGen) Name() string { return "delete-directive" }

// View implements core.Generator.
func (deleteGen) View() view.View { return view.StructView{} }

// Generate implements core.Generator.
func (deleteGen) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	tpl := &template.DeleteTemplate{
		Targets: cpath.MustCompile("//directive"),
		Class:   "delete/directive",
	}
	return tpl.Generate(set)
}

// sampledGen caps another generator's faultload at n scenarios, drawn
// uniformly. It stays on the eager RandomSubset draw — not the streaming
// reservoir sampler — because the published Table 1 faultloads pin the
// exact scenarios each seed selects; streaming campaigns that only need a
// bounded sample should use SampleGenerator instead.
type sampledGen struct {
	inner core.Generator
	n     int
	seed  int64
}

var _ core.Generator = sampledGen{}

// Name implements core.Generator.
func (g sampledGen) Name() string { return g.inner.Name() }

// View implements core.Generator.
func (g sampledGen) View() view.View { return g.inner.View() }

// Generate implements core.Generator.
func (g sampledGen) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	scens, err := g.inner.Generate(set)
	if err != nil {
		return nil, err
	}
	return scenario.RandomSubset(rand.New(rand.NewSource(g.seed)), scens, g.n), nil
}

// runMerged runs one campaign per generator against the target family —
// concurrently, as a suite sharing the worker budget — and merges the
// profiles in generator order.
func runMerged(ctx context.Context, factory TargetFactory, port int, label string, workers int, gens ...core.Generator) (*Profile, error) {
	campaigns := make([]SuiteCampaign, 0, len(gens))
	for i, gen := range gens {
		sc, err := NewSuiteCampaign(fmt.Sprintf("%s/%d/%s", label, i, gen.Name()), factory, port, gen)
		if err != nil {
			return nil, fmt.Errorf("conferr: %s campaign (%s): %w", label, gen.Name(), err)
		}
		campaigns = append(campaigns, sc)
	}
	res, err := (&Suite{Campaigns: campaigns, Workers: workers}).Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("conferr: %s: %w", label, err)
	}
	return mergeSuiteProfiles(label, res.Results), nil
}

// mergeSuiteProfiles folds consecutive campaign results into one profile
// labelled with the experiment name.
func mergeSuiteProfiles(label string, results []CampaignResult) *Profile {
	parts := make([]*Profile, 0, len(results))
	system := ""
	for _, cr := range results {
		system = cr.Profile.System
		parts = append(parts, cr.Profile)
	}
	return MergeProfiles(system, label, parts...)
}

// Table1Spec sets the §5.2 faultload sizes for one system: every directive
// is deleted (capped at DeleteCap when non-zero) and typos are injected
// into directive names and values. The per-system mixes mirror the paper's
// per-section sampling, which weights each system differently (the paper's
// own injection counts — 327/98/120 for 14/8/98 directives — imply
// non-uniform faultloads); see EXPERIMENTS.md.
type Table1Spec struct {
	// Factory constructs the system target; parallel runs call it once per
	// worker.
	Factory TargetFactory
	// Port is the fixed primary port the faultload embeds.
	Port int
	// NamesPerDirective is the number of name typos per directive.
	NamesPerDirective int
	// ValuesPerDirective is the number of value typos per directive.
	ValuesPerDirective int
	// DeleteCap caps deletion scenarios (0 = all).
	DeleteCap int
	// NameCap / ValueCap cap each typo campaign's total (0 = all).
	NameCap  int
	ValueCap int
}

// Table1Specs returns the default specs for the paper's three systems,
// sized to approximate the paper's injection counts (MySQL 327, Postgres
// 98, Apache 120).
func Table1Specs() map[string]Table1Spec {
	return map[string]Table1Spec{
		// 14 deletions + 14×16 name + 14×6 value ≈ 322.
		"MySQL": {Factory: MySQLTargetAt, Port: table1MySQLPort,
			NamesPerDirective: 16, ValuesPerDirective: 6},
		// 8 deletions + 8×6 + 8×6 = 104.
		"Postgres": {Factory: PostgresTargetAt, Port: table1PostgresPort,
			NamesPerDirective: 6, ValuesPerDirective: 6},
		// 20 deletions + 25 name + 75 value = 120 (Apache's faultload is
		// value-heavy: most of its 98 directives are freeform-valued).
		"Apache": {Factory: ApacheTargetAt, Port: table1ApachePort,
			NamesPerDirective: 1, ValuesPerDirective: 1,
			DeleteCap: 20, NameCap: 25, ValueCap: 75},
	}
}

// RunTable1System runs the §5.2 typo-resilience experiment for one system,
// sequentially.
func RunTable1System(spec Table1Spec, seed int64) (*Profile, error) {
	return RunTable1SystemCtx(context.Background(), spec, seed, 1)
}

// table1Generators builds the three campaign generators of one system's
// §5.2 faultload: directive deletions plus name and value typos, each
// capped per the spec.
func table1Generators(spec Table1Spec, seed int64) []core.Generator {
	var del core.Generator = deleteGen{}
	if spec.DeleteCap > 0 {
		del = sampledGen{inner: del, n: spec.DeleteCap, seed: seed}
	}
	var names core.Generator = TypoGenerator(TypoOptions{
		Seed: seed + 1, NamesOnly: true, PerDirective: spec.NamesPerDirective,
	})
	var values core.Generator = TypoGenerator(TypoOptions{
		Seed: seed + 2, ValuesOnly: true, PerDirective: spec.ValuesPerDirective,
	})
	if spec.NameCap > 0 {
		names = sampledGen{inner: names, n: spec.NameCap, seed: seed + 3}
	}
	if spec.ValueCap > 0 {
		values = sampledGen{inner: values, n: spec.ValueCap, seed: seed + 4}
	}
	return []core.Generator{del, names, values}
}

// RunTable1SystemCtx is RunTable1System under a context: the system's
// three campaigns run as a suite sharing the given worker budget.
func RunTable1SystemCtx(ctx context.Context, spec Table1Spec, seed int64, workers int) (*Profile, error) {
	return runMerged(ctx, spec.Factory, spec.Port, "table1", workers, table1Generators(spec, seed)...)
}

// Table1Result holds the per-system profiles and summaries of Table 1.
type Table1Result struct {
	// Order lists system labels in paper order.
	Order []string
	// Profiles maps system label to its merged profile.
	Profiles map[string]*Profile
	// Summaries maps system label to its Table 1 row.
	Summaries map[string]Summary
}

// RunTable1 reproduces Table 1 ("Resilience to typos") for MySQL,
// Postgres and Apache, sequentially.
func RunTable1(seed int64) (*Table1Result, error) {
	return RunTable1Ctx(context.Background(), seed, 1)
}

// RunTable1Ctx is RunTable1 under a context: the full 3-system × 3-campaign
// matrix runs as one suite, with the worker budget shared across every
// campaign. The per-system profiles are identical to sequential runs —
// only wall-clock time changes with the budget.
func RunTable1Ctx(ctx context.Context, seed int64, workers int) (*Table1Result, error) {
	res := &Table1Result{
		Order:     []string{"MySQL", "Postgres", "Apache"},
		Profiles:  make(map[string]*Profile),
		Summaries: make(map[string]Summary),
	}
	specs := Table1Specs()
	var campaigns []SuiteCampaign
	// spans[label] is the half-open campaign index range of that system's
	// cells — recorded while building, so the result grouping cannot drift
	// from the suite layout.
	spans := make(map[string][2]int, len(res.Order))
	for _, label := range res.Order {
		spec := specs[label]
		start := len(campaigns)
		for i, gen := range table1Generators(spec, seed) {
			sc, err := NewSuiteCampaign(fmt.Sprintf("%s/%d/%s", label, i, gen.Name()),
				spec.Factory, spec.Port, gen)
			if err != nil {
				return nil, fmt.Errorf("conferr: table1 %s: %w", label, err)
			}
			campaigns = append(campaigns, sc)
		}
		spans[label] = [2]int{start, len(campaigns)}
	}
	suiteRes, err := (&Suite{Campaigns: campaigns, Workers: workers}).Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("conferr: table1: %w", err)
	}
	for _, label := range res.Order {
		span := spans[label]
		p := mergeSuiteProfiles("table1", suiteRes.Results[span[0]:span[1]])
		s := p.Summarize()
		s.System = label
		res.Profiles[label] = p
		res.Summaries[label] = s
	}
	return res, nil
}

// Format renders the result in the paper's Table 1 shape.
func (r *Table1Result) Format() string {
	rows := make([]Summary, 0, len(r.Order))
	for _, label := range r.Order {
		rows = append(rows, r.Summaries[label])
	}
	return FormatTable1(rows...)
}

// Table 2 row support states.
const (
	// SupportYes means every variant configuration was accepted.
	SupportYes = "Yes"
	// SupportNo means at least one variant was rejected.
	SupportNo = "No"
	// SupportNA means the variation class does not apply to the system.
	SupportNA = "n/a"
)

// Table2Result maps system label → variation class → support state.
type Table2Result struct {
	// Order lists system labels in paper order.
	Order []string
	// Classes lists variation classes in paper row order.
	Classes []string
	// Support holds the cell values.
	Support map[string]map[string]string
}

// table2Applicability mirrors the paper's n/a cells: section ordering only
// applies to MySQL (Postgres has a single implicit section; Apache's
// sections are argument-scoped containers).
func table2Applicable(system, class string) bool {
	if class == structural.VariationSectionOrder {
		return system == "MySQL"
	}
	return true
}

// RunTable2 reproduces Table 2 ("Resilience to structural errors"): for
// each system and variation class, PerClass variant configurations are
// generated; the class is supported when the system accepts every one.
func RunTable2(seed int64, perClass int) (*Table2Result, error) {
	return RunTable2Ctx(context.Background(), seed, perClass, 1)
}

// RunTable2Ctx is RunTable2 under a context: the full system × class
// matrix (minus the paper's n/a cells) runs as one suite sharing the
// worker budget.
func RunTable2Ctx(ctx context.Context, seed int64, perClass, workers int) (*Table2Result, error) {
	if perClass == 0 {
		perClass = 10
	}
	res := &Table2Result{
		Order:   []string{"MySQL", "Postgres", "Apache"},
		Classes: structural.AllVariationClasses(),
		Support: make(map[string]map[string]string),
	}
	targets := map[string]TargetFactory{
		"MySQL":    MySQLTargetAt,
		"Postgres": PostgresTargetAt,
		"Apache":   ApacheTargetAt,
	}
	type cell struct{ label, class string }
	var cells []cell
	var campaigns []SuiteCampaign
	for _, label := range res.Order {
		res.Support[label] = make(map[string]string)
		for _, class := range res.Classes {
			if !table2Applicable(label, class) {
				res.Support[label][class] = SupportNA
				continue
			}
			sc, err := NewSuiteCampaign(label+"/"+class, targets[label], 0,
				VariationsGenerator(seed, perClass, []string{class}))
			if err != nil {
				return nil, fmt.Errorf("conferr: table2 %s/%s: %w", label, class, err)
			}
			cells = append(cells, cell{label, class})
			campaigns = append(campaigns, sc)
		}
	}
	suiteRes, err := (&Suite{Campaigns: campaigns, Workers: workers}).Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("conferr: table2: %w", err)
	}
	for i, c := range cells {
		support := SupportYes
		for _, rec := range suiteRes.Results[i].Profile.Records {
			if rec.Outcome != profile.Ignored {
				support = SupportNo
				break
			}
		}
		res.Support[c.label][c.class] = support
	}
	return res, nil
}

// SatisfiedPercent returns the share of applicable variation classes a
// system supports, as the paper's bottom row.
func (r *Table2Result) SatisfiedPercent(system string) int {
	total, yes := 0, 0
	for _, class := range r.Classes {
		switch r.Support[system][class] {
		case SupportYes:
			total++
			yes++
		case SupportNo:
			total++
		}
	}
	// The paper counts n/a rows in the denominator as satisfied
	// assumptions are out of 5 rows minus nothing: MySQL 4/5=80%,
	// Postgres and Apache 3/4=75%.
	if total == 0 {
		return 0
	}
	return int(float64(yes)/float64(total)*100 + 0.5)
}

// Format renders the result in the paper's Table 2 shape.
func (r *Table2Result) Format() string {
	labels := map[string]string{
		structural.VariationSectionOrder:   "Order of sections",
		structural.VariationDirectiveOrder: "Order of directives",
		structural.VariationSpaces:         "Spaces near separators",
		structural.VariationMixedCase:      "Mixed-case directive names",
		structural.VariationTruncatedNames: "Truncatable directive names",
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s", "")
	for _, sys := range r.Order {
		fmt.Fprintf(&b, "%12s", sys)
	}
	b.WriteByte('\n')
	for _, class := range r.Classes {
		fmt.Fprintf(&b, "%-30s", labels[class])
		for _, sys := range r.Order {
			fmt.Fprintf(&b, "%12s", r.Support[sys][class])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-30s", "% of assumptions satisfied")
	for _, sys := range r.Order {
		fmt.Fprintf(&b, "%11d%%", r.SatisfiedPercent(sys))
	}
	b.WriteByte('\n')
	return b.String()
}

// Table 3 cell values.
const (
	// Found means the server detected the fault.
	Found = "found"
	// NotFound means the fault was injected and went undetected.
	NotFound = "not found"
	// NotInjectable means the fault could not be expressed in the
	// server's configuration format (the paper's N/A).
	NotInjectable = "N/A"
)

// Table3Result maps fault class → system label → cell value.
type Table3Result struct {
	// Order lists system labels in paper order.
	Order []string
	// Classes lists the fault classes in paper row order.
	Classes []string
	// Cells holds the outcomes.
	Cells map[string]map[string]string
	// Profiles keeps the raw per-system profiles.
	Profiles map[string]*Profile
}

// RunTable3 reproduces Table 3 ("Resilience to semantic errors") for BIND
// and djbdns, using the four fault classes of the paper plus the
// extension classes when extended is true.
func RunTable3(extended bool) (*Table3Result, error) {
	return RunTable3Ctx(context.Background(), extended, 1)
}

// RunTable3Ctx is RunTable3 under a context, with each system's campaign
// fanned out over the given number of workers. Targets and the semantic
// generator are resolved from the registry.
func RunTable3Ctx(ctx context.Context, extended bool, workers int) (*Table3Result, error) {
	classes := []string{
		semantic.ClassMissingPTR,
		semantic.ClassPTRToCNAME,
		semantic.ClassCNAMEDupNS,
		semantic.ClassMXToCNAME,
	}
	if extended {
		classes = semantic.AllClasses()
	}
	res := &Table3Result{
		Order:    []string{"BIND", "djbdns"},
		Classes:  classes,
		Cells:    make(map[string]map[string]string),
		Profiles: make(map[string]*Profile),
	}
	systems := map[string]string{"BIND": "bind", "djbdns": "djbdns"}
	var campaigns []SuiteCampaign
	for _, label := range res.Order {
		tf, err := LookupTarget(systems[label])
		if err != nil {
			return nil, err
		}
		gf, err := LookupGenerator("semantic")
		if err != nil {
			return nil, err
		}
		gen, err := gf(GeneratorOptions{System: systems[label], Classes: classes})
		if err != nil {
			return nil, err
		}
		sc, err := NewSuiteCampaign(label+"/semantic", tf, 0, gen)
		if err != nil {
			return nil, fmt.Errorf("conferr: table3 %s: %w", label, err)
		}
		campaigns = append(campaigns, sc)
	}
	suiteRes, err := (&Suite{Campaigns: campaigns, Workers: workers}).Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("conferr: table3: %w", err)
	}
	for i, label := range res.Order {
		p := suiteRes.Results[i].Profile
		res.Profiles[label] = p
		byClass := make(map[string][]profile.Record)
		for _, rec := range p.Records {
			byClass[rec.Class] = append(byClass[rec.Class], rec)
		}
		for _, class := range classes {
			if res.Cells[class] == nil {
				res.Cells[class] = make(map[string]string)
			}
			res.Cells[class][label] = classifyTable3(byClass[class])
		}
	}
	return res, nil
}

// classifyTable3 folds the records of one fault class into a cell value:
// all inexpressible ⇒ N/A; any detection ⇒ found; otherwise not found.
func classifyTable3(recs []profile.Record) string {
	if len(recs) == 0 {
		return NotInjectable
	}
	injected, detected := 0, 0
	for _, r := range recs {
		switch r.Outcome {
		case profile.DetectedAtStartup, profile.DetectedByTest:
			injected++
			detected++
		case profile.Ignored:
			injected++
		}
	}
	switch {
	case injected == 0:
		return NotInjectable
	case detected == injected:
		return Found
	case detected > 0:
		return Found + " (partially)"
	default:
		return NotFound
	}
}

// Format renders the result in the paper's Table 3 shape.
func (r *Table3Result) Format() string {
	labels := map[string]string{
		semantic.ClassMissingPTR:      "Missing PTR",
		semantic.ClassPTRToCNAME:      "PTR pointing to CNAME",
		semantic.ClassCNAMEDupNS:      "dupl name for NS and CNAME",
		semantic.ClassMXToCNAME:       "MX pointing to CNAME",
		semantic.ClassCNAMEChain:      "CNAME chain (ext)",
		semantic.ClassDuplicateRecord: "duplicate record (ext)",
		semantic.ClassAddressInCNAME:  "address via CNAME (ext)",
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-32s", "Err#", "Description of fault")
	for _, sys := range r.Order {
		fmt.Fprintf(&b, "%22s", sys)
	}
	b.WriteByte('\n')
	for i, class := range r.Classes {
		fmt.Fprintf(&b, "%-4d %-32s", i+1, labels[class])
		for _, sys := range r.Order {
			fmt.Fprintf(&b, "%22s", r.Cells[class][sys])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure3Result holds the §5.5 comparison outcome.
type Figure3Result struct {
	// Bandings lists the per-system band distributions, Postgres first as
	// in the paper's figure.
	Bandings []Banding
	// Profiles keeps the raw profiles by system label.
	Profiles map[string]*Profile
}

// RunFigure3 reproduces Figure 3: the MySQL-vs-Postgres comparison of
// resilience to typos in directive values, over configurations listing
// most available directives with defaults (booleans excluded), with
// perDirective experiments per directive (the paper used 20).
func RunFigure3(seed int64, perDirective int) (*Figure3Result, error) {
	return RunFigure3Ctx(context.Background(), seed, perDirective, 1)
}

// RunFigure3Ctx is RunFigure3 under a context, with each system's campaign
// fanned out over the given number of workers.
func RunFigure3Ctx(ctx context.Context, seed int64, perDirective, workers int) (*Figure3Result, error) {
	if perDirective == 0 {
		perDirective = 20
	}
	res := &Figure3Result{Profiles: make(map[string]*Profile)}
	systems := []struct {
		label   string
		factory TargetFactory
		port    int
	}{
		{"Postgresql", PostgresFullTargetAt, figure3PostgresPort},
		{"MySQL", MySQLFullTargetAt, figure3MySQLPort},
	}
	var campaigns []SuiteCampaign
	for _, sys := range systems {
		sc, err := NewSuiteCampaign(sys.label+"/value-typo", sys.factory, sys.port,
			TypoGenerator(TypoOptions{
				Seed: seed, ValuesOnly: true, PerDirective: perDirective,
			}))
		if err != nil {
			return nil, fmt.Errorf("conferr: figure3 %s: %w", sys.label, err)
		}
		campaigns = append(campaigns, sc)
	}
	suiteRes, err := (&Suite{Campaigns: campaigns, Workers: workers}).Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("conferr: figure3: %w", err)
	}
	for i, sys := range systems {
		p := suiteRes.Results[i].Profile
		res.Profiles[sys.label] = p
		banding := p.BandByKey(func(r Record) string { return TypoDirectiveKey(r.ScenarioID) })
		banding.System = sys.label
		res.Bandings = append(res.Bandings, banding)
	}
	return res, nil
}

// Format renders the result in the paper's Figure 3 shape.
func (r *Figure3Result) Format() string {
	return FormatFigure3(r.Bandings...)
}

// EditBenchmarkResult is the outcome of the §5.5 configuration-process
// benchmark: the share of near-edit typos each database detected.
type EditBenchmarkResult struct {
	// Order lists system labels, Postgres first.
	Order []string
	// Rates maps system label to its detection rate in [0,1].
	Rates map[string]float64
	// Profiles keeps the raw profiles.
	Profiles map[string]*Profile
}

// RunEditBenchmark runs the §5.5 benchmark procedure on MySQL and
// Postgres: a three-edit administration task per system (raise the
// connection limit, grow the main buffer, retune a capacity knob), with
// perEdit typo variants injected right where each edit happened.
func RunEditBenchmark(seed int64, perEdit int) (*EditBenchmarkResult, error) {
	return RunEditBenchmarkCtx(context.Background(), seed, perEdit, 1)
}

// RunEditBenchmarkCtx is RunEditBenchmark under a context, with each
// system's campaign fanned out over the given number of workers.
func RunEditBenchmarkCtx(ctx context.Context, seed int64, perEdit, workers int) (*EditBenchmarkResult, error) {
	res := &EditBenchmarkResult{
		Order:    []string{"Postgres", "MySQL"},
		Rates:    make(map[string]float64),
		Profiles: make(map[string]*Profile),
	}
	type task struct {
		factory TargetFactory
		port    int
		edits   []Edit
	}
	tasks := map[string]task{
		"Postgres": {
			factory: PostgresTargetAt, port: table1PostgresPort,
			edits: []Edit{
				{Directive: "max_connections", NewValue: "200"},
				{Directive: "shared_buffers", NewValue: "64MB"},
				{Directive: "max_fsm_pages", NewValue: "204800"},
			},
		},
		"MySQL": {
			factory: MySQLTargetAt, port: table1MySQLPort,
			edits: []Edit{
				{Directive: "max_connections", NewValue: "200"},
				{Directive: "key_buffer_size", NewValue: "32M"},
				{Directive: "table_open_cache", NewValue: "128"},
			},
		},
	}
	var campaigns []SuiteCampaign
	for _, label := range res.Order {
		tk := tasks[label]
		sc, err := NewSuiteCampaign(label+"/editsim", tk.factory, tk.port,
			EditBenchmarkGenerator(tk.edits, seed, perEdit))
		if err != nil {
			return nil, fmt.Errorf("conferr: edit benchmark %s: %w", label, err)
		}
		campaigns = append(campaigns, sc)
	}
	suiteRes, err := (&Suite{Campaigns: campaigns, Workers: workers}).Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("conferr: edit benchmark: %w", err)
	}
	for i, label := range res.Order {
		p := suiteRes.Results[i].Profile
		res.Profiles[label] = p
		res.Rates[label] = p.DetectionRate()
	}
	return res, nil
}

// Format renders the benchmark outcome.
func (r *EditBenchmarkResult) Format() string {
	var b strings.Builder
	b.WriteString("Configuration-process benchmark (typos near valid edits):\n")
	for _, sys := range r.Order {
		fmt.Fprintf(&b, "%-12s detected %.0f%% of near-edit typos\n",
			sys, r.Rates[sys]*100)
	}
	return b.String()
}

// DetectionByClass summarizes a profile's detection rate per fault class,
// sorted by class name — the ablation view of a resilience profile.
func DetectionByClass(p *Profile) string {
	byClass := p.CountByClass()
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var b strings.Builder
	for _, c := range classes {
		m := byClass[c]
		injected := m[profile.DetectedAtStartup] + m[profile.DetectedByTest] + m[profile.Ignored]
		detected := m[profile.DetectedAtStartup] + m[profile.DetectedByTest]
		fmt.Fprintf(&b, "%-36s injected=%-4d detected=%-4d", c, injected, detected)
		if injected > 0 {
			fmt.Fprintf(&b, " (%d%%)", int(float64(detected)/float64(injected)*100+0.5))
		}
		if na := m[profile.NotExpressible]; na > 0 {
			fmt.Fprintf(&b, " not-expressible=%d", na)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
