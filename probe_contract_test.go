package conferr

import (
	"fmt"
	"strings"
	"testing"

	"conferr/internal/memnet"
	"conferr/internal/suts"
	"conferr/internal/suts/httpd"
	"conferr/internal/suts/nginx"
)

// These tests are the fidelity contract of the httpprobe fast path
// (ISSUE 7): for every registered target the probes must succeed against
// a started baseline, and for the HTTP targets — the ones whose probes
// moved off net/http — every configuration variant must produce
// byte-identical outcomes and error wording on the fast path and on the
// retained net/http reference path, over both kernel TCP and memnet.

// outcomes runs each test and renders its result: "name=ok" or
// "name=<error text>".
func outcomes(tests []suts.Test) []string {
	out := make([]string, 0, len(tests))
	for _, tc := range tests {
		if err := tc.Run(); err != nil {
			out = append(out, tc.Name+"="+err.Error())
		} else {
			out = append(out, tc.Name+"=ok")
		}
	}
	return out
}

// TestProbeContractRegisteredTargets starts every registered target's
// baseline configuration and requires every functional probe to pass —
// the smoke half of the contract, covering targets whose probes are not
// HTTP at all.
func TestProbeContractRegisteredTargets(t *testing.T) {
	for _, name := range RegisteredTargets() {
		name := name
		t.Run(name, func(t *testing.T) {
			f, err := LookupTarget(name)
			if err != nil {
				t.Fatal(err)
			}
			st, err := f(0)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.System.Start(st.System.DefaultConfig()); err != nil {
				t.Fatalf("baseline start: %v", err)
			}
			defer func() { _ = st.System.Stop() }()
			for _, got := range outcomes(st.Target.Tests) {
				if !strings.HasSuffix(got, "=ok") {
					t.Errorf("baseline probe failed: %s", got)
				}
			}
		})
	}
}

// nginxVariant mutates the default configuration the way the typo
// faultload does, with the probe outcome the variant must produce.
type httpVariant struct {
	name   string
	mutate func(conf string) string
}

func nginxVariants() []httpVariant {
	return []httpVariant{
		{"baseline", func(c string) string { return c }},
		// The html root typo'd: http-get sees the wrong marker.
		{"root-typo", func(c string) string {
			return strings.ReplaceAll(c, "root /var/www/html;", "root /var/www/htlm;")
		}},
		// The blog server_name typo'd: vhost-blog falls back to the
		// default server.
		{"server-name-typo", func(c string) string {
			return strings.ReplaceAll(c, "server_name blog.example.com;", "server_name blog.exmaple.com;")
		}},
		// The static location removed: static-location is served by the
		// catch-all.
		{"static-location-dropped", func(c string) string {
			return strings.ReplaceAll(c, "location /static/ {", "location /static-other/ {")
		}},
	}
}

// runHTTPContrast starts sys with files, runs the fast and the
// reference probes against the same live instance, and requires
// identical outcome strings. It returns the fast outcomes for golden
// checks.
func runHTTPContrast(t *testing.T, sys suts.System, files suts.Files, fast, ref []suts.Test) []string {
	t.Helper()
	if err := sys.Start(files); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() { _ = sys.Stop() }()
	got := outcomes(fast)
	want := outcomes(ref)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("fast/reference divergence:\n  fast: %s\n  ref:  %s", got[i], want[i])
		}
	}
	return got
}

func TestProbeContractNginx(t *testing.T) {
	for _, transport := range []string{"tcp", "memnet"} {
		transport := transport
		t.Run(transport, func(t *testing.T) {
			for _, v := range nginxVariants() {
				v := v
				t.Run(v.name, func(t *testing.T) {
					s, err := nginx.New(0)
					if err != nil {
						t.Fatal(err)
					}
					if transport == "memnet" {
						s.SetTransport(memnet.New())
					}
					files := s.DefaultConfig()
					files[nginx.ConfigFile] = []byte(v.mutate(string(files[nginx.ConfigFile])))
					runHTTPContrast(t, s, files, nginx.Tests(s), nginx.ReferenceTests(s))
				})
			}

			// Refused: probe a stopped server through clients that held a
			// warm connection — both paths must report the kernel's
			// refusal wording, byte for byte.
			t.Run("refused-after-stop", func(t *testing.T) {
				s, err := nginx.New(0)
				if err != nil {
					t.Fatal(err)
				}
				if transport == "memnet" {
					s.SetTransport(memnet.New())
				}
				fast, ref := nginx.Tests(s), nginx.ReferenceTests(s)
				if err := s.Start(s.DefaultConfig()); err != nil {
					t.Fatal(err)
				}
				// Warm both clients' connections.
				outcomes(fast)
				outcomes(ref)
				if err := s.Stop(); err != nil {
					t.Fatal(err)
				}
				got := outcomes(fast)
				want := outcomes(ref)
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("fast/reference divergence:\n  fast: %s\n  ref:  %s", got[i], want[i])
					}
				}
				golden := fmt.Sprintf(
					`http-get=GET: Get "http://127.0.0.1:%d/": dial tcp 127.0.0.1:%d: connect: connection refused`,
					s.DefaultPort(), s.DefaultPort())
				if got[0] != golden {
					t.Errorf("refused wording:\n  got:  %s\n  want: %s", got[0], golden)
				}
			})
		})
	}
}

// TestProbeContractNginxGolden pins the exact failure wording of the
// body-check probes so a drift in either probe path (or the serving
// body) fails loudly, not just relatively.
func TestProbeContractNginxGolden(t *testing.T) {
	s, err := nginx.New(0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetTransport(memnet.New())
	files := s.DefaultConfig()
	conf := string(files[nginx.ConfigFile])
	conf = strings.ReplaceAll(conf, "root /var/www/html;", "root /var/www/htlm;")
	files[nginx.ConfigFile] = []byte(conf)
	got := runHTTPContrast(t, s, files, nginx.Tests(s), nginx.ReferenceTests(s))
	want := `http-get=default server did not serve the html root: "<html><body><h1>Welcome to nginx-sim!</h1><p>server=www.example.com</p><p>location=/</p><p>root=/var/www/htlm</p></body></html>\n"`
	if got[0] != want {
		t.Errorf("body-mismatch wording:\n  got:  %s\n  want: %s", got[0], want)
	}
}

func TestProbeContractHTTPD(t *testing.T) {
	variants := []httpVariant{
		{"baseline", func(c string) string { return c }},
	}
	for _, transport := range []string{"tcp", "memnet"} {
		transport := transport
		t.Run(transport, func(t *testing.T) {
			for _, v := range variants {
				v := v
				t.Run(v.name, func(t *testing.T) {
					s, err := httpd.New(0)
					if err != nil {
						t.Fatal(err)
					}
					if transport == "memnet" {
						s.SetTransport(memnet.New())
					}
					files := s.DefaultConfig()
					files[httpd.ConfigFile] = []byte(v.mutate(string(files[httpd.ConfigFile])))
					runHTTPContrast(t, s, files, httpd.Tests(s), httpd.ReferenceTests(s))
				})
			}
			t.Run("refused-after-stop", func(t *testing.T) {
				s, err := httpd.New(0)
				if err != nil {
					t.Fatal(err)
				}
				if transport == "memnet" {
					s.SetTransport(memnet.New())
				}
				fast, ref := httpd.Tests(s), httpd.ReferenceTests(s)
				if err := s.Start(s.DefaultConfig()); err != nil {
					t.Fatal(err)
				}
				outcomes(fast)
				outcomes(ref)
				if err := s.Stop(); err != nil {
					t.Fatal(err)
				}
				got := outcomes(fast)
				want := outcomes(ref)
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("fast/reference divergence:\n  fast: %s\n  ref:  %s", got[i], want[i])
					}
				}
			})
		})
	}
}
