package conferr

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5). Each benchmark runs the full experiment per iteration
// and reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints, next to the usual ns/op, the detection percentages (Table 1),
// assumption satisfaction (Table 2), found/total fault classes (Table 3)
// and band shares (Figure 3). Absolute times are not expected to match the
// paper's testbed (Dell Optiplex 745; 1.1–6 s per injection) — the
// simulated SUTs start in microseconds — but the per-injection cost is
// reported for completeness as injection ns/op.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"conferr/internal/benchfixture"
	"conferr/internal/plugins/semantic"
	"conferr/internal/profile"
	"conferr/internal/suts"
)

// benchTable1System runs one Table 1 column and reports its row values.
func benchTable1System(b *testing.B, label string) {
	spec := Table1Specs()[label]
	var last Summary
	for i := 0; i < b.N; i++ {
		p, err := RunTable1System(spec, DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = p.Summarize()
	}
	b.ReportMetric(float64(last.Injected), "injected")
	b.ReportMetric(pctOf(last.AtStartup, last.Injected), "startup-det-%")
	b.ReportMetric(pctOf(last.ByTest, last.Injected), "test-det-%")
	b.ReportMetric(pctOf(last.Ignored, last.Injected), "ignored-%")
	if last.Injected > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(last.Injected),
			"ns/injection")
	}
}

func pctOf(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total) * 100
}

// BenchmarkTable1_MySQL regenerates the MySQL column of Table 1
// (paper: 327 injected, 83% startup, ~0% tests, 17% ignored).
func BenchmarkTable1_MySQL(b *testing.B) { benchTable1System(b, "MySQL") }

// BenchmarkTable1_Postgres regenerates the Postgres column of Table 1
// (paper: 98 injected, 78% startup, 0% tests, 22% ignored).
func BenchmarkTable1_Postgres(b *testing.B) { benchTable1System(b, "Postgres") }

// BenchmarkTable1_Apache regenerates the Apache column of Table 1
// (paper: 120 injected, 38% startup, 5% tests, 57% ignored).
func BenchmarkTable1_Apache(b *testing.B) { benchTable1System(b, "Apache") }

// BenchmarkTable2_Structural regenerates Table 2 (paper: MySQL satisfies
// 80% of the structural assumptions, Postgres and Apache 75%).
func BenchmarkTable2_Structural(b *testing.B) {
	var res *Table2Result
	for i := 0; i < b.N; i++ {
		r, err := RunTable2(DefaultSeed, 10)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.SatisfiedPercent("MySQL")), "mysql-satisfied-%")
	b.ReportMetric(float64(res.SatisfiedPercent("Postgres")), "postgres-satisfied-%")
	b.ReportMetric(float64(res.SatisfiedPercent("Apache")), "apache-satisfied-%")
}

// benchTable3System regenerates one Table 3 column, reporting how many of
// the paper's four fault classes were found / not found / not injectable.
func benchTable3System(b *testing.B, label string) {
	var res *Table3Result
	for i := 0; i < b.N; i++ {
		r, err := RunTable3(false)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	found, notFound, na := 0, 0, 0
	for _, class := range res.Classes {
		switch res.Cells[class][label] {
		case Found:
			found++
		case NotFound:
			notFound++
		case NotInjectable:
			na++
		}
	}
	b.ReportMetric(float64(found), "found")
	b.ReportMetric(float64(notFound), "not-found")
	b.ReportMetric(float64(na), "n/a")
}

// BenchmarkTable3_BIND regenerates the BIND column of Table 3
// (paper: errors 3 and 4 found; 1 and 2 not found).
func BenchmarkTable3_BIND(b *testing.B) { benchTable3System(b, "BIND") }

// BenchmarkTable3_Djbdns regenerates the djbdns column of Table 3
// (paper: errors 1 and 2 N/A; 3 and 4 not found).
func BenchmarkTable3_Djbdns(b *testing.B) { benchTable3System(b, "djbdns") }

// BenchmarkFigure3_Compare regenerates Figure 3 (paper: Postgres detects
// >75% of value typos for ~45% of directives; MySQL detects <25% for
// ~45% of its).
func BenchmarkFigure3_Compare(b *testing.B) {
	var res *Figure3Result
	for i := 0; i < b.N; i++ {
		r, err := RunFigure3(DefaultSeed, 20)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, band := range res.Bandings {
		prefix := "pg-"
		if band.System == "MySQL" {
			prefix = "mysql-"
		}
		b.ReportMetric(band.Share[Excellent]*100, prefix+"excellent-%")
		b.ReportMetric(band.Share[Poor]*100, prefix+"poor-%")
	}
}

// BenchmarkInjectionOverhead measures the cost of complete injection
// experiments (mutate, back-transform, serialize, start SUT, functional
// test, stop) — the per-injection figure the paper reports as seconds on
// its testbed (§5.2).
//
// The Postgres variant runs a whole small campaign against the simulated
// Postgres per iteration. The Synthetic1k variant runs a campaign over a
// ~1k-directive configuration spread across 32 files — the regime the
// incremental pipeline targets, where each scenario dirties one file and
// every other file rides on the campaign's cached baseline bytes.
func BenchmarkInjectionOverhead(b *testing.B) {
	b.Run("Postgres", func(b *testing.B) {
		tgt, err := PostgresTargetAt(0)
		if err != nil {
			b.Fatal(err)
		}
		gen := TypoGenerator(TypoOptions{Seed: 1, PerModel: 1})
		records := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := &Campaign{Target: tgt.Target, Generator: gen}
			p, err := c.Run()
			if err != nil {
				b.Fatal(err)
			}
			records = len(p.Records)
		}
		if records > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(records),
				"ns/injection")
		}
	})
	b.Run("Synthetic1k", func(b *testing.B) {
		tgt := &Target{System: benchfixture.System{}, Formats: benchfixture.Formats()}
		records := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := &Campaign{Target: tgt, Generator: benchfixture.Gen{}}
			p, err := c.Run()
			if err != nil {
				b.Fatal(err)
			}
			records = len(p.Records)
		}
		if records > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(records),
				"ns/injection")
		}
	})
}

// Ablation benches: design choices DESIGN.md calls out.

// BenchmarkAblation_TypoSubmodels reports the per-submodel detection rate
// against Postgres — how much each of the five §2.1 error categories
// contributes to the profile.
func BenchmarkAblation_TypoSubmodels(b *testing.B) {
	var prof *Profile
	for i := 0; i < b.N; i++ {
		tgt, err := PostgresTargetAt(0)
		if err != nil {
			b.Fatal(err)
		}
		c := &Campaign{Target: tgt.Target, Generator: TypoGenerator(TypoOptions{Seed: 2, PerModel: 20})}
		p, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		prof = p
	}
	for class, m := range prof.CountByClass() {
		injected := m[profile.DetectedAtStartup] + m[profile.DetectedByTest] + m[profile.Ignored]
		detected := m[profile.DetectedAtStartup] + m[profile.DetectedByTest]
		b.ReportMetric(pctOf(detected, injected), class+"-det-%")
	}
}

// BenchmarkAblation_KeyboardLayout compares the faultload sizes of the US
// and Swiss-German layouts — layout choice changes which substitution and
// insertion typos are realistic.
func BenchmarkAblation_KeyboardLayout(b *testing.B) {
	var us, ch int
	for i := 0; i < b.N; i++ {
		tgt, err := PostgresTargetAt(0)
		if err != nil {
			b.Fatal(err)
		}
		cUS := &Campaign{Target: tgt.Target, Generator: TypoGenerator(TypoOptions{Seed: 3})}
		pUS, err := cUS.Run()
		if err != nil {
			b.Fatal(err)
		}
		tgt2, err := PostgresTargetAt(0)
		if err != nil {
			b.Fatal(err)
		}
		cCH := &Campaign{Target: tgt2.Target, Generator: TypoGenerator(TypoOptions{Seed: 3, SwissKeyboard: true})}
		pCH, err := cCH.Run()
		if err != nil {
			b.Fatal(err)
		}
		us, ch = len(pUS.Records), len(pCH.Records)
	}
	b.ReportMetric(float64(us), "us-scenarios")
	b.ReportMetric(float64(ch), "swiss-scenarios")
}

// BenchmarkAblation_SemanticExtended runs the extended RFC-1912 classes
// against both name servers.
func BenchmarkAblation_SemanticExtended(b *testing.B) {
	var res *Table3Result
	for i := 0; i < b.N; i++ {
		r, err := RunTable3(true)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(len(res.Classes)), "classes")
	_ = semantic.AllClasses
}

// BenchmarkEditBenchmark runs the §5.5 configuration-process benchmark
// (paper: Postgres more resilient to near-edit typos than MySQL).
func BenchmarkEditBenchmark(b *testing.B) {
	var res *EditBenchmarkResult
	for i := 0; i < b.N; i++ {
		r, err := RunEditBenchmark(DefaultSeed, 20)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Rates["Postgres"]*100, "pg-det-%")
	b.ReportMetric(res.Rates["MySQL"]*100, "mysql-det-%")
}

// Parallel-runner throughput benches: the same campaign at increasing
// worker counts. The profile is identical at every width (the runner's
// determinism contract); only wall-clock changes.

// Fixed primary ports for this file, distinct from every other fixed port
// in the repo.
const (
	benchSimPort       = 23920
	benchSlowPort      = 23921
	benchLifecyclePort = 23922
)

// BenchmarkSUTLifecycle compares the three worker-SUT lifecycles on the
// nginx simulator: cold (start/stop per experiment), reload (warm pooled
// instances re-configured in place) and validate (parse-only). The
// experiments/s metric is what the CI bench-delta guard compares —
// reload must beat cold, or the pooled lifecycle has lost its point.
// Profiles are byte-identical between cold and reload (the equivalence
// tests pin it); validate trades functional-test coverage for speed.
func BenchmarkSUTLifecycle(b *testing.B) {
	gen := func() Generator { return TypoGenerator(TypoOptions{Seed: DefaultSeed}) }
	for _, mode := range []Lifecycle{LifecycleCold, LifecycleReload, LifecycleValidate} {
		b.Run(mode.String(), func(b *testing.B) {
			records := 0
			counters := &LifecycleCounters{}
			for i := 0; i < b.N; i++ {
				r := &Runner{
					Factory: NginxTargetAt, Generator: gen(), Port: benchLifecyclePort,
					Lifecycle: mode, PoolCounters: counters,
				}
				p, err := r.Run(context.Background(), WithParallelism(4))
				if err != nil {
					b.Fatal(err)
				}
				records = len(p.Records)
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(records*b.N)/sec, "experiments/s")
			}
			snap := counters.Snapshot()
			if mode == LifecycleReload && snap.Reloads == 0 {
				b.Fatal("reload bench never reloaded")
			}
			if mode == LifecycleValidate && snap.Validates == 0 {
				b.Fatal("validate bench never validated")
			}
		})
	}
}

// benchCampaignWorkers runs one campaign per iteration at the given width
// and reports experiments per second.
func benchCampaignWorkers(b *testing.B, factory TargetFactory, gen func() Generator, port, workers int) {
	b.Helper()
	records := 0
	for i := 0; i < b.N; i++ {
		r := &Runner{Factory: factory, Generator: gen(), Port: port}
		p, err := r.Run(context.Background(), WithParallelism(workers))
		if err != nil {
			b.Fatal(err)
		}
		records = len(p.Records)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(records*b.N)/sec, "experiments/s")
	}
}

// BenchmarkCampaignThroughput_Sim measures the in-process simulators,
// where one experiment costs tens of microseconds of CPU. Parallel gains
// here track the machine's core count.
func BenchmarkCampaignThroughput_Sim(b *testing.B) {
	gen := func() Generator { return TypoGenerator(TypoOptions{Seed: DefaultSeed}) }
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchCampaignWorkers(b, MySQLTargetAt, gen, benchSimPort, workers)
		})
	}
}

// slowSystem adds a fixed start latency to a SUT, modeling the regime the
// paper reports for real server binaries (1.1–6 s per injection, §5.2) at
// a benchmark-friendly scale. This is where the parallel runner pays off
// regardless of core count: workers overlap the waiting.
type slowSystem struct {
	suts.System
	delay time.Duration
}

// Start implements suts.System.
func (s slowSystem) Start(files suts.Files) error {
	time.Sleep(s.delay)
	return s.System.Start(files)
}

// DefaultPort keeps the wrapped system eligible for per-worker port
// remapping.
func (s slowSystem) DefaultPort() int {
	if dp, ok := s.System.(interface{ DefaultPort() int }); ok {
		return dp.DefaultPort()
	}
	return 0
}

// slowFactory wraps the Postgres target with the given start latency.
func slowFactory(delay time.Duration) TargetFactory {
	return func(port int) (*SystemTarget, error) {
		st, err := PostgresTargetAt(port)
		if err != nil {
			return nil, err
		}
		sys := slowSystem{System: st.Target.System, delay: delay}
		t := *st.Target
		t.System = sys
		return &SystemTarget{System: sys, Target: &t}, nil
	}
}

// BenchmarkCampaignThroughput_SlowSUT measures a SUT with 500µs startup
// latency — a 2000x-scaled-down stand-in for the paper's real servers.
// N workers deliver close to N-fold throughput here even on one core.
func BenchmarkCampaignThroughput_SlowSUT(b *testing.B) {
	factory := slowFactory(500 * time.Microsecond)
	gen := func() Generator { return TypoGenerator(TypoOptions{Seed: DefaultSeed, PerModel: 10}) }
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchCampaignWorkers(b, factory, gen, benchSlowPort, workers)
		})
	}
}
